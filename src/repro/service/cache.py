"""Content-addressed solve-result cache (bounded in-memory LRU + JSON-on-disk).

Results are keyed by the :class:`~repro.service.jobs.SolveJob` fingerprint, so
any two jobs with identical content — regardless of where or when they were
built — share one cache entry.  The in-memory layer is a bounded LRU (the same
capacity/eviction-counter contract as
:class:`repro.runtime.manager.BitstreamCache`): repeated lookups are free
inside one process, and sustained traffic cannot grow the map without limit.
The optional directory layer persists every entry as ``<fingerprint>.json`` so
warm sweeps survive process restarts — and so memory-evicted entries are still
hits on their next lookup.

The directory layer is **multi-process safe** and is the shared cache tier of
the :mod:`repro.fleet` replica fleet:

* Disk writes are atomic (write to a temp file, then :func:`os.replace`) so a
  killed run never leaves a truncated entry behind, and concurrent writers of
  the same fingerprint last-write-win an identical payload.
* On-disk entries carry a schema version and a **migration registry** upgrades
  valid-but-older entries on read (persisting the upgraded form), so a schema
  bump costs one rewrite per entry instead of silently re-solving the world.
* Per-fingerprint ``<fingerprint>.lock`` files implement **cross-replica
  single-flight**: one process claims the solve for a hot miss
  (:meth:`SolveCache.try_acquire_flight`) while every other process awaits the
  entry (:meth:`SolveCache.await_flight`).  A lock whose holder died mid-solve
  goes stale and is reclaimed; corrupt lock files are deleted and counted.

Corrupt (non-JSON) entries found at load time are deleted and recorded, so one
bad file costs a re-solve instead of poisoning the request path forever;
entries that are valid JSON but fit neither this build's schema nor a
registered migration are recorded as misses and left on disk — they may belong
to a newer version sharing the directory.
"""

from __future__ import annotations

import dataclasses
import json
import os
import socket
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Union

from repro.service.results import JobResult

#: Default in-memory LRU bound; ``capacity=None`` restores the unbounded map.
DEFAULT_CAPACITY = 1024

#: Current on-disk entry schema.  Version 1 is the PR 5 format (a bare
#: ``JobResult.as_dict()`` with no version marker); version 2 stamps
#: ``schema_version`` and guarantees the ``worker`` field is present.
CACHE_SCHEMA_VERSION = 2

#: Seconds after which a flight lock is presumed abandoned even when its
#: holder pid cannot be probed (e.g. the holder ran on another host).
DEFAULT_STALE_LOCK_AFTER = 300.0

_MIGRATIONS: Dict[int, Callable[[Dict[str, object]], Dict[str, object]]] = {}


def cache_migration(from_version: int):
    """Register an on-disk entry migration step ``from_version -> +1``.

    The decorated function receives the (already shallow-copied) entry dict
    and must return the upgraded dict with ``schema_version`` bumped by one.
    Steps chain: a version-1 entry read by a version-4 build runs the 1->2,
    2->3 and 3->4 steps in order.
    """

    def register(fn: Callable[[Dict[str, object]], Dict[str, object]]):
        if from_version in _MIGRATIONS:
            raise ValueError(f"duplicate cache migration from version {from_version}")
        _MIGRATIONS[from_version] = fn
        return fn

    return register


def migrate_entry(data: Dict[str, object]) -> Optional[Dict[str, object]]:
    """Upgrade a loaded entry dict to :data:`CACHE_SCHEMA_VERSION`.

    Returns the upgraded dict (the input is not mutated), or ``None`` when the
    entry cannot be brought to the current version — an unknown future version
    (a newer build shares the directory) or a gap in the migration chain.
    """
    try:
        version = int(data.get("schema_version", 1))
    except (TypeError, ValueError):
        return None
    if version > CACHE_SCHEMA_VERSION:
        return None  # written by a newer build; not ours to touch
    while version < CACHE_SCHEMA_VERSION:
        step = _MIGRATIONS.get(version)
        if step is None:
            return None
        data = step(dict(data))
        new_version = int(data.get("schema_version", version))
        if new_version <= version:
            raise RuntimeError(
                f"cache migration from version {version} did not advance the "
                f"schema_version (got {new_version})"
            )
        version = new_version
    return data


@cache_migration(1)
def _migrate_v1(data: Dict[str, object]) -> Dict[str, object]:
    """PR 5 entries: no version marker, ``worker`` missing on early records."""
    data.setdefault("worker", "")
    data["schema_version"] = 2
    return data


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but isn't ours (or unprobeable): assume alive
    return True


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/eviction/flight counters of one :class:`SolveCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0
    migrated: int = 0  # older-schema entries upgraded on read
    flights: int = 0  # single-flight leases this process acquired
    stale_locks: int = 0  # abandoned locks reclaimed (holder died mid-solve)
    corrupt_locks: int = 0  # undecodable lock files deleted
    broken_locks: int = 0  # live-holder locks force-broken after an await bound
    lock_errors: int = 0  # lock dir unusable (full/unwritable): solved locally
    store_errors: int = 0  # disk writes that failed (entry kept in memory only)

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "migrated": self.migrated,
            "flights": self.flights,
            "stale_locks": self.stale_locks,
            "corrupt_locks": self.corrupt_locks,
            "broken_locks": self.broken_locks,
            "lock_errors": self.lock_errors,
            "store_errors": self.store_errors,
            "hit_rate": self.hit_rate,
        }


class SolveCache:
    """Content-addressed store of :class:`~repro.service.results.JobResult`.

    Parameters
    ----------
    directory:
        Optional directory for the JSON persistence layer; created on demand.
        ``None`` keeps the cache purely in-memory.
    capacity:
        Bound on the in-memory LRU layer (:data:`DEFAULT_CAPACITY` entries by
        default); the least-recently-used entry is evicted past the bound and
        counted in ``stats.evictions``.  Disk entries are never evicted — an
        evicted fingerprint is reloaded (and re-promoted) on its next lookup
        when a directory is configured.  ``None`` disables the bound.
    stale_lock_after:
        Seconds before a single-flight lock with an unprobeable holder is
        presumed abandoned.  Locks whose holder pid is probeable and dead are
        reclaimed immediately regardless of age.

    The cache is safe to share across the gateway event loop and worker-shard
    threads (every memory-layer mutation happens under one lock), and the
    directory layer is safe to share across processes.
    """

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        capacity: Optional[int] = DEFAULT_CAPACITY,
        stale_lock_after: float = DEFAULT_STALE_LOCK_AFTER,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("cache capacity must be positive (or None for unbounded)")
        if stale_lock_after <= 0:
            raise ValueError("stale_lock_after must be positive")
        self.directory = Path(directory) if directory is not None else None
        self.capacity = capacity
        self.stale_lock_after = stale_lock_after
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, JobResult]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[JobResult]:
        """Look a result up, trying memory first, then disk (LRU-refreshed)."""
        result = self.probe(fingerprint)
        with self._lock:
            if result is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        return result

    def probe(self, fingerprint: str) -> Optional[JobResult]:
        """Like :meth:`get` but without touching the hit/miss counters.

        Single-flight waiters poll this; counting every poll as a miss would
        swamp the hit-rate statistics with retries of one lookup.
        """
        with self._lock:
            result = self._memory.get(fingerprint)
            if result is not None:
                self._memory.move_to_end(fingerprint)
        if result is None and self.directory is not None:
            result = self._load(fingerprint)
            if result is not None:
                with self._lock:
                    self._memory[fingerprint] = result
                    self._memory.move_to_end(fingerprint)
                    self._evict_overflow()
        return result

    def put(self, result: JobResult) -> None:
        """Store a result under its fingerprint (memory + disk)."""
        with self._lock:
            self.stats.stores += 1
            self._memory[result.fingerprint] = result
            self._memory.move_to_end(result.fingerprint)
            self._evict_overflow()
        if self.directory is not None:
            self._dump(result)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._memory:
                return True
        return self.directory is not None and self._path(fingerprint).exists()

    def __len__(self) -> int:
        with self._lock:
            memory = set(self._memory)
        return len(memory | set(self._disk_fingerprints()))

    @property
    def memory_size(self) -> int:
        """Entries currently held by the in-memory LRU layer."""
        with self._lock:
            return len(self._memory)

    def fingerprints(self) -> Iterator[str]:
        """Every cached fingerprint (memory and disk, deduplicated)."""
        with self._lock:
            memory = set(self._memory)
        yield from sorted(memory | set(self._disk_fingerprints()))

    def clear(self, disk: bool = True) -> None:
        """Drop all entries (and, optionally, the persisted files + locks)."""
        with self._lock:
            self._memory.clear()
        if disk and self.directory is not None and self.directory.exists():
            for path in list(self.directory.glob("*.json")) + list(
                self.directory.glob("*.lock")
            ):
                try:
                    path.unlink()
                except OSError:
                    pass  # a concurrent clear/release got there first

    def drop_memory(self) -> None:
        """Forget the in-memory layer only (used to test disk round-trips)."""
        with self._lock:
            self._memory.clear()

    # ------------------------------------------------------------------
    # cross-replica single-flight
    # ------------------------------------------------------------------
    def try_acquire_flight(self, fingerprint: str) -> bool:
        """Try to become the fleet-wide solver for ``fingerprint``.

        Returns ``True`` when this process now holds the per-fingerprint lock
        file (it must :meth:`release_flight` when the solve finishes, success
        or not), ``False`` when another live process already holds it.  Stale
        locks — holder pid dead, or older than ``stale_lock_after`` — are
        reclaimed transparently.  Directory-less caches trivially grant every
        claim: in-process dedup is the micro-batcher's job, this lock only
        exists to coordinate *across* processes sharing a directory.
        """
        if self.directory is None:
            return True
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            # the cache dir itself is unusable (full disk, path hijacked by a
            # chaos action): nobody can coordinate through it, so claim the
            # solve locally — liveness beats deduplication
            with self._lock:
                self.stats.lock_errors += 1
            return True
        lock_path = self._lock_path(fingerprint)
        payload = json.dumps(
            {
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "acquired_at": time.time(),
            }
        )
        for _attempt in range(8):  # bounded: stale reclaim may race other claimants
            try:
                fd = os.open(str(lock_path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if not self._reclaim_if_stale(lock_path):
                    return False
                continue  # reclaimed (or holder vanished): race for it again
            except OSError:
                # can't create the lock file (full/unwritable lock dir): no
                # process can win this lock either, so solve locally and count
                # the degraded coordination instead of failing the request
                with self._lock:
                    self.stats.lock_errors += 1
                return True
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            with self._lock:
                self.stats.flights += 1
            return True
        return False

    def break_flight(self, fingerprint: str) -> None:
        """Forcibly delete the flight lock even if its holder looks alive.

        The escape hatch behind :meth:`await_flight`'s wall-clock bound: a
        holder that is alive-but-wedged (e.g. SIGSTOPped mid-solve) passes the
        ``_pid_alive`` probe forever, so stale reclaim never fires.  A waiter
        whose wait bound expired breaks the lock, claims the flight itself,
        and solves — if the wedged holder later wakes up and releases, it
        unlinks a lock it no longer owns, which is harmless (the release path
        never validates ownership).
        """
        if self.directory is None:
            return
        try:
            self._lock_path(fingerprint).unlink()
        except OSError:
            return  # already gone: nothing was broken
        with self._lock:
            self.stats.broken_locks += 1

    def release_flight(self, fingerprint: str) -> None:
        """Drop this process's flight lock (idempotent, never raises)."""
        if self.directory is None:
            return
        try:
            self._lock_path(fingerprint).unlink()
        except OSError:
            pass

    def flight_in_progress(self, fingerprint: str) -> bool:
        """Is another process currently solving ``fingerprint``?

        Reclaims stale/corrupt locks as a side effect, so a waiter polling
        this sees ``False`` (and can claim the solve) the moment the holder is
        known dead.
        """
        if self.directory is None:
            return False
        lock_path = self._lock_path(fingerprint)
        if not lock_path.exists():
            return False
        return not self._reclaim_if_stale(lock_path)

    def await_flight(
        self,
        fingerprint: str,
        timeout: float = 60.0,
        poll_interval: float = 0.02,
    ) -> Optional[JobResult]:
        """Block until another process's in-flight solve lands, and return it.

        Returns ``None`` when the lock disappears or goes stale without a
        result (the holder failed — the caller should claim the flight and
        solve), or when ``timeout`` expires (the caller should solve anyway:
        liveness beats deduplication).  The async equivalent lives on the
        gateway, which polls :meth:`probe`/:meth:`flight_in_progress` off the
        event loop.
        """
        deadline = time.monotonic() + timeout
        while True:
            result = self.probe(fingerprint)
            if result is not None:
                return result
            if not self.flight_in_progress(fingerprint):
                # released (or reclaimed) — one last probe catches the
                # store-then-release window before giving up on the holder
                return self.probe(fingerprint)
            if time.monotonic() >= deadline:
                return None
            time.sleep(poll_interval)

    def _lock_path(self, fingerprint: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{fingerprint}.lock"

    def _reclaim_if_stale(self, lock_path: Path) -> bool:
        """Delete a stale or corrupt lock.  ``True`` when the path is now free
        (deleted here, or already gone), ``False`` while its holder looks
        alive."""
        try:
            raw = lock_path.read_text(encoding="utf-8")
        except OSError:
            return True  # vanished: holder released between exists() and here
        try:
            info = json.loads(raw)
            pid = int(info["pid"])
            acquired_at = float(info["acquired_at"])
            host = info.get("host")
        except (ValueError, TypeError, KeyError, json.JSONDecodeError):
            # a partially-written or garbage lock can never be released by a
            # holder we can identify: delete it and count the cleanup
            with self._lock:
                self.stats.corrupt_locks += 1
            self._unlink_quiet(lock_path)
            return True
        stale = time.time() - acquired_at > self.stale_lock_after
        if not stale and host == socket.gethostname():
            stale = not _pid_alive(pid)
        if stale:
            with self._lock:
                self.stats.stale_locks += 1
            self._unlink_quiet(lock_path)
            return True
        return False

    @staticmethod
    def _unlink_quiet(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass  # a concurrent reclaimer won the race

    # ------------------------------------------------------------------
    def _evict_overflow(self) -> None:
        """Pop LRU-tail entries past capacity (caller holds the lock)."""
        if self.capacity is None:
            return
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _path(self, fingerprint: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{fingerprint}.json"

    def _disk_fingerprints(self) -> Iterator[str]:
        if self.directory is None or not self.directory.exists():
            return
        for path in self.directory.glob("*.json"):
            yield path.stem

    def _load(self, fingerprint: str) -> Optional[JobResult]:
        path = self._path(fingerprint)
        try:
            stamp = path.stat().st_mtime_ns
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError:
            return None  # unreadable (or plain missing) -> miss, re-solve
        except json.JSONDecodeError:
            # truncated or corrupt file (e.g. an interrupted write): delete it
            # so the entry is re-solved exactly once instead of failing every
            # lookup until someone cleans the directory by hand
            with self._lock:
                self.stats.corrupt += 1
            try:
                # guard against a concurrent writer having atomically replaced
                # the bad file with a fresh valid entry since we read it
                if path.stat().st_mtime_ns == stamp:
                    path.unlink()
            except OSError:
                pass
            return None
        upgraded = migrate_entry(data) if isinstance(data, dict) else None
        if upgraded is None:
            # valid JSON that fits neither this build's schema nor a migration
            # step: a *newer* process sharing the directory may have written
            # it, so leave the file alone and just miss
            with self._lock:
                self.stats.corrupt += 1
            return None
        try:
            result = JobResult.from_dict(upgraded)
        except (TypeError, ValueError, KeyError):
            with self._lock:
                self.stats.corrupt += 1
            return None
        if upgraded is not data:
            # an older entry was upgraded on read: persist the new form so the
            # migration runs once per entry, not once per lookup
            with self._lock:
                self.stats.migrated += 1
            self._dump(result)
        result.cached = False  # the flag describes this run, not the stored one
        return result

    def _dump(self, result: JobResult) -> None:
        assert self.directory is not None
        data = result.as_dict()
        data["cached"] = False
        data["schema_version"] = CACHE_SCHEMA_VERSION
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=f".{result.fingerprint[:12]}.", suffix=".tmp"
            )
        except OSError:
            # full disk / hijacked cache path: the entry stays memory-only and
            # the failure is a counter, never an unhandled exception on the
            # request path
            with self._lock:
                self.stats.store_errors += 1
            return
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(data, handle, indent=1)
            os.replace(tmp_name, self._path(result.fingerprint))
        except OSError:
            with self._lock:
                self.stats.store_errors += 1
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
