"""Content-addressed solve-result cache (bounded in-memory LRU + JSON-on-disk).

Results are keyed by the :class:`~repro.service.jobs.SolveJob` fingerprint, so
any two jobs with identical content — regardless of where or when they were
built — share one cache entry.  The in-memory layer is a bounded LRU (the same
capacity/eviction-counter contract as
:class:`repro.runtime.manager.BitstreamCache`): repeated lookups are free
inside one process, and sustained traffic cannot grow the map without limit.
The optional directory layer persists every entry as ``<fingerprint>.json`` so
warm sweeps survive process restarts — and so memory-evicted entries are still
hits on their next lookup.

Disk writes are atomic (write to a temp file, then :func:`os.replace`) so a
killed run never leaves a truncated entry behind.  Corrupt (non-JSON) entries
found at load time are deleted and recorded, so one bad file costs a re-solve
instead of poisoning the request path forever; entries that are valid JSON
but don't fit this build's schema are recorded as misses and left on disk —
they may belong to a newer version sharing the directory.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.service.results import JobResult

#: Default in-memory LRU bound; ``capacity=None`` restores the unbounded map.
DEFAULT_CAPACITY = 1024


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`SolveCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "hit_rate": self.hit_rate,
        }


class SolveCache:
    """Content-addressed store of :class:`~repro.service.results.JobResult`.

    Parameters
    ----------
    directory:
        Optional directory for the JSON persistence layer; created on demand.
        ``None`` keeps the cache purely in-memory.
    capacity:
        Bound on the in-memory LRU layer (:data:`DEFAULT_CAPACITY` entries by
        default); the least-recently-used entry is evicted past the bound and
        counted in ``stats.evictions``.  Disk entries are never evicted — an
        evicted fingerprint is reloaded (and re-promoted) on its next lookup
        when a directory is configured.  ``None`` disables the bound.

    The cache is safe to share across the gateway event loop and worker-shard
    threads: every memory-layer mutation happens under one lock.
    """

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        capacity: Optional[int] = DEFAULT_CAPACITY,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("cache capacity must be positive (or None for unbounded)")
        self.directory = Path(directory) if directory is not None else None
        self.capacity = capacity
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, JobResult]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[JobResult]:
        """Look a result up, trying memory first, then disk (LRU-refreshed)."""
        with self._lock:
            result = self._memory.get(fingerprint)
            if result is not None:
                self._memory.move_to_end(fingerprint)
        if result is None and self.directory is not None:
            result = self._load(fingerprint)
            if result is not None:
                with self._lock:
                    self._memory[fingerprint] = result
                    self._memory.move_to_end(fingerprint)
                    self._evict_overflow()
        with self._lock:
            if result is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        return result

    def put(self, result: JobResult) -> None:
        """Store a result under its fingerprint (memory + disk)."""
        with self._lock:
            self.stats.stores += 1
            self._memory[result.fingerprint] = result
            self._memory.move_to_end(result.fingerprint)
            self._evict_overflow()
        if self.directory is not None:
            self._dump(result)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._memory:
                return True
        return self.directory is not None and self._path(fingerprint).exists()

    def __len__(self) -> int:
        with self._lock:
            memory = set(self._memory)
        return len(memory | set(self._disk_fingerprints()))

    @property
    def memory_size(self) -> int:
        """Entries currently held by the in-memory LRU layer."""
        with self._lock:
            return len(self._memory)

    def fingerprints(self) -> Iterator[str]:
        """Every cached fingerprint (memory and disk, deduplicated)."""
        with self._lock:
            memory = set(self._memory)
        yield from sorted(memory | set(self._disk_fingerprints()))

    def clear(self, disk: bool = True) -> None:
        """Drop all entries (and, optionally, the persisted files)."""
        with self._lock:
            self._memory.clear()
        if disk and self.directory is not None and self.directory.exists():
            for path in self.directory.glob("*.json"):
                path.unlink()

    def drop_memory(self) -> None:
        """Forget the in-memory layer only (used to test disk round-trips)."""
        with self._lock:
            self._memory.clear()

    # ------------------------------------------------------------------
    def _evict_overflow(self) -> None:
        """Pop LRU-tail entries past capacity (caller holds the lock)."""
        if self.capacity is None:
            return
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _path(self, fingerprint: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{fingerprint}.json"

    def _disk_fingerprints(self) -> Iterator[str]:
        if self.directory is None or not self.directory.exists():
            return
        for path in self.directory.glob("*.json"):
            yield path.stem

    def _load(self, fingerprint: str) -> Optional[JobResult]:
        path = self._path(fingerprint)
        try:
            stamp = path.stat().st_mtime_ns
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            result = JobResult.from_dict(data)
        except OSError:
            return None  # unreadable (or plain missing) -> miss, re-solve
        except json.JSONDecodeError:
            # truncated or corrupt file (e.g. an interrupted write): delete it
            # so the entry is re-solved exactly once instead of failing every
            # lookup until someone cleans the directory by hand
            with self._lock:
                self.stats.corrupt += 1
            try:
                # guard against a concurrent writer having atomically replaced
                # the bad file with a fresh valid entry since we read it
                if path.stat().st_mtime_ns == stamp:
                    path.unlink()
            except OSError:
                pass
            return None
        except (TypeError, ValueError, KeyError):
            # valid JSON that doesn't fit this build's JobResult schema: a
            # *newer* process sharing the directory may have written it, so
            # leave the file alone and just miss
            with self._lock:
                self.stats.corrupt += 1
            return None
        result.cached = False  # the flag describes this run, not the stored one
        return result

    def _dump(self, result: JobResult) -> None:
        assert self.directory is not None
        self.directory.mkdir(parents=True, exist_ok=True)
        data = result.as_dict()
        data["cached"] = False
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{result.fingerprint[:12]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(data, handle, indent=1)
            os.replace(tmp_name, self._path(result.fingerprint))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
