"""Content-addressed solve-result cache (in-memory + JSON-on-disk).

Results are keyed by the :class:`~repro.service.jobs.SolveJob` fingerprint, so
any two jobs with identical content — regardless of where or when they were
built — share one cache entry.  The in-memory layer makes repeated lookups
free inside one process; the optional directory layer persists every entry as
``<fingerprint>.json`` so warm sweeps survive process restarts.

Disk writes are atomic (write to a temp file, then :func:`os.replace`) so a
killed run never leaves a truncated entry behind.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.service.results import JobResult


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters of one :class:`SolveCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
        }


class SolveCache:
    """Content-addressed store of :class:`~repro.service.results.JobResult`.

    Parameters
    ----------
    directory:
        Optional directory for the JSON persistence layer; created on demand.
        ``None`` keeps the cache purely in-memory.
    """

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.stats = CacheStats()
        self._memory: Dict[str, JobResult] = {}

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[JobResult]:
        """Look a result up, trying memory first, then disk."""
        result = self._memory.get(fingerprint)
        if result is None and self.directory is not None:
            result = self._load(fingerprint)
            if result is not None:
                self._memory[fingerprint] = result
        if result is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, result: JobResult) -> None:
        """Store a result under its fingerprint (memory + disk)."""
        self.stats.stores += 1
        self._memory[result.fingerprint] = result
        if self.directory is not None:
            self._dump(result)

    def __contains__(self, fingerprint: str) -> bool:
        if fingerprint in self._memory:
            return True
        return self.directory is not None and self._path(fingerprint).exists()

    def __len__(self) -> int:
        return len(set(self._memory) | set(self._disk_fingerprints()))

    def fingerprints(self) -> Iterator[str]:
        """Every cached fingerprint (memory and disk, deduplicated)."""
        yield from sorted(set(self._memory) | set(self._disk_fingerprints()))

    def clear(self, disk: bool = True) -> None:
        """Drop all entries (and, optionally, the persisted files)."""
        self._memory.clear()
        if disk and self.directory is not None and self.directory.exists():
            for path in self.directory.glob("*.json"):
                path.unlink()

    def drop_memory(self) -> None:
        """Forget the in-memory layer only (used to test disk round-trips)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    def _path(self, fingerprint: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{fingerprint}.json"

    def _disk_fingerprints(self) -> Iterator[str]:
        if self.directory is None or not self.directory.exists():
            return
        for path in self.directory.glob("*.json"):
            yield path.stem

    def _load(self, fingerprint: str) -> Optional[JobResult]:
        path = self._path(fingerprint)
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            result = JobResult.from_dict(data)
        except (OSError, json.JSONDecodeError, TypeError, ValueError, KeyError):
            return None  # unreadable or schema-mismatched entry -> miss, re-solve
        result.cached = False  # the flag describes this run, not the stored one
        return result

    def _dump(self, result: JobResult) -> None:
        assert self.directory is not None
        self.directory.mkdir(parents=True, exist_ok=True)
        data = result.as_dict()
        data["cached"] = False
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{result.fingerprint[:12]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(data, handle, indent=1)
            os.replace(tmp_name, self._path(result.fingerprint))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
