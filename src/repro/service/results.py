"""Result records produced by the batch service and sweep aggregation.

:class:`JobResult` is the flat, JSON-round-trippable record stored in the
solve cache and streamed out of the batch executor; :class:`SweepReport`
aggregates a grid of them into the tables wired through
:mod:`repro.analysis.report`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Mapping, Optional

from repro.analysis.report import SWEEP_HEADERS, format_table, sweep_table_rows


@dataclasses.dataclass
class JobResult:
    """Flat record of one solved job.

    All fields are JSON-serializable so results round-trip through the
    on-disk cache unchanged.  ``floorplan`` holds the
    :meth:`~repro.floorplan.placement.Floorplan.to_dict` encoding of the
    solution (``None`` when the solve produced no placement).
    """

    fingerprint: str
    job_name: str
    status: str
    feasible: bool
    objective: float
    solve_time: float
    wall_time: float
    backend: str
    mode: str
    heuristic: Optional[str] = None
    metrics: Optional[Dict[str, float]] = None
    floorplan: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    cached: bool = False
    worker: str = ""
    #: ``True`` when the result was produced under brown-out or a clamped
    #: deadline budget and is best-effort rather than the canonical answer
    #: (heuristic-only, or a solver pass that hit the clamped time limit
    #: without proving optimality).  Degraded results are served but never
    #: written to the shared cache.
    degraded: bool = False
    #: Solver stage timings (``{"name": ..., "seconds": ...}`` dicts) captured
    #: by the tracing hooks during the solve; ``None`` for cached entries
    #: written before tracing existed (``from_dict`` tolerates both).
    stages: Optional[List[Dict[str, object]]] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_report(cls, job, report, wall_time: float, worker: str = "") -> "JobResult":
        """Build a result from a :class:`~repro.floorplan.solver.SolveReport`."""
        floorplan = None
        if report.floorplan is not None and report.floorplan.placements:
            floorplan = report.floorplan.to_dict()
        return cls(
            fingerprint=job.fingerprint,
            job_name=job.name,
            status=report.solution.status.value,
            feasible=report.feasible,
            objective=float(report.solution.objective),
            solve_time=float(report.solution.solve_time),
            wall_time=float(wall_time),
            backend=report.solution.backend,
            mode=job.mode,
            heuristic=job.heuristic if job.mode == "HO" else None,
            metrics=report.metrics.as_dict() if report.metrics is not None else None,
            floorplan=floorplan,
            worker=worker,
            stages=getattr(report, "stages", None),
        )

    @classmethod
    def failure(cls, job, message: str, wall_time: float = 0.0, worker: str = "") -> "JobResult":
        """Record for a job whose execution raised instead of solving."""
        return cls(
            fingerprint=job.fingerprint,
            job_name=job.name,
            status="error",
            feasible=False,
            objective=float("nan"),
            solve_time=0.0,
            wall_time=float(wall_time),
            backend="",
            mode=job.mode,
            heuristic=job.heuristic if job.mode == "HO" else None,
            error=message,
            worker=worker,
        )

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (see :meth:`from_dict`)."""
        data = dataclasses.asdict(self)
        if math.isnan(self.objective):
            data["objective"] = None  # JSON has no NaN
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobResult":
        """Rebuild a result from :meth:`as_dict` output."""
        known = {field.name for field in dataclasses.fields(cls)}
        payload = {key: value for key, value in data.items() if key in known}
        if payload.get("objective") is None:
            payload["objective"] = float("nan")
        return cls(**payload)

    # ------------------------------------------------------------------
    @property
    def wasted_frames(self) -> Optional[int]:
        """Wasted-frame count of the solution (``None`` when unsolved)."""
        if self.metrics is None:
            return None
        return int(self.metrics["wasted_frames"])

    @property
    def wirelength(self) -> Optional[float]:
        """Wirelength of the solution (``None`` when unsolved)."""
        if self.metrics is None:
            return None
        return float(self.metrics["wirelength"])

    def objective_key(self):
        """Deterministic comparison key: fewer wasted frames, then shorter
        wires, then the job name as a tie breaker."""
        wasted = self.wasted_frames
        wires = self.wirelength
        return (
            0 if self.feasible else 1,
            wasted if wasted is not None else float("inf"),
            wires if wires is not None else float("inf"),
            self.job_name,
        )


@dataclasses.dataclass
class SweepReport:
    """Aggregate outcome of one batch/sweep run.

    Attributes
    ----------
    results:
        One :class:`JobResult` per submitted job, in submission order
        (deduplicated jobs share the same underlying record content).
    wall_time:
        Wall-clock seconds for the whole batch, including scheduling.
    cache_hits, cache_misses:
        How many submitted jobs were served from the solve cache vs. solved.
    """

    results: List[JobResult]
    wall_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.results)

    @property
    def num_feasible(self) -> int:
        """Jobs that produced a verified-feasible floorplan."""
        return sum(1 for result in self.results if result.feasible)

    @property
    def num_errors(self) -> int:
        """Jobs whose execution failed."""
        return sum(1 for result in self.results if result.status == "error")

    @property
    def total_solve_time(self) -> float:
        """Sum of per-job backend solve times (the sequential-cost proxy)."""
        return sum(result.solve_time for result in self.results)

    @property
    def parallel_speedup(self) -> float:
        """Aggregate solver seconds divided by batch wall-clock seconds."""
        if self.wall_time <= 0:
            return float("inf")
        return self.total_solve_time / self.wall_time

    @property
    def hit_rate(self) -> float:
        """Fraction of submitted jobs served from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    # ------------------------------------------------------------------
    def rows(self) -> List[List[object]]:
        """Per-job metric rows (see :func:`repro.analysis.report.sweep_table_rows`)."""
        return sweep_table_rows(self.results)

    def format(self, title: str | None = None) -> str:
        """The per-job metrics table as fixed-width text."""
        return format_table(SWEEP_HEADERS, self.rows(), title=title)

    def summary(self) -> str:
        """One-line aggregate summary."""
        return (
            f"{len(self.results)} jobs: {self.num_feasible} feasible, "
            f"{self.num_errors} errors, {self.cache_hits} cache hits "
            f"({100 * self.hit_rate:.0f}%), wall {self.wall_time:.2f}s, "
            f"solver {self.total_solve_time:.2f}s "
            f"(speedup {self.parallel_speedup:.1f}x)"
        )
