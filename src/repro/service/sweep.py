"""Scenario-sweep driver: cross devices x workloads x relocation specs.

A sweep expands a grid of scenarios into concrete
:class:`~repro.service.jobs.SolveJob` lists and hands them to the
:class:`~repro.service.executor.BatchSolver`.  Problems are built once per
``(device, workload config)`` cell and shared by every relocation/mode
variant, so the expensive part of the cross product — device construction and
synthetic generation — is not repeated.

Relocation entries may be concrete :class:`~repro.relocation.spec.RelocationSpec`
objects, ``None`` (no relocation), or callables ``problem -> spec`` for specs
that must reference the generated region names (see :func:`constraint_for`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from repro.device.grid import FPGADevice
from repro.floorplan.metrics import ObjectiveWeights
from repro.floorplan.problem import FloorplanProblem
from repro.milp import SolverOptions
from repro.relocation.spec import RelocationSpec
from repro.service.cache import SolveCache
from repro.service.executor import BatchSolver
from repro.service.jobs import SolveJob
from repro.service.results import SweepReport
from repro.workloads.synthetic import SyntheticWorkloadConfig, synthetic_problem

RelocationEntry = Union[
    None, RelocationSpec, Callable[[FloorplanProblem], Optional[RelocationSpec]]
]


def constraint_for(
    regions: int = 1, copies: int = 1, hard: bool = True
) -> Callable[[FloorplanProblem], RelocationSpec]:
    """A relocation-entry factory for synthetic sweeps.

    Returns a callable that requests ``copies`` free-compatible areas for the
    first ``regions`` (smallest-index) regions of whatever problem it is given
    — synthetic region names are generated, so specs cannot be written down
    up front.
    """

    def build(problem: FloorplanProblem) -> RelocationSpec:
        chosen = problem.region_names[:regions]
        mapping = {name: copies for name in chosen}
        if hard:
            return RelocationSpec.as_constraint(mapping)
        return RelocationSpec.as_metric(mapping)

    return build


def sweep_jobs(
    devices: Sequence[FPGADevice],
    configs: Sequence[SyntheticWorkloadConfig],
    relocations: Sequence[RelocationEntry] = (None,),
    modes: Sequence[str] = ("HO",),
    options: Optional[SolverOptions] = None,
    weights: Optional[ObjectiveWeights] = None,
    heuristic: str = "tessellation",
    lexicographic: bool = False,
) -> List[SolveJob]:
    """Expand the scenario grid into a deterministic job list.

    The grid order is ``devices`` (outer) x ``configs`` x ``relocations`` x
    ``modes`` (inner), matching nested-loop reading order.
    """
    options = options or SolverOptions()
    jobs: List[SolveJob] = []
    for device in devices:
        for config in configs:
            problem = synthetic_problem(
                device=device,
                config=config,
                name=(
                    f"{device.name}-{config.num_regions}r"
                    f"-u{config.utilization:g}-s{config.seed}"
                ),
            )
            for entry in relocations:
                spec = entry(problem) if callable(entry) else entry
                for mode in modes:
                    jobs.append(
                        SolveJob(
                            problem=problem,
                            relocation=spec,
                            mode=mode,
                            options=options,
                            heuristic=heuristic,
                            weights=weights,
                            lexicographic=lexicographic,
                        )
                    )
    return jobs


def run_sweep(
    jobs: Sequence[SolveJob],
    cache: Optional[SolveCache] = None,
    max_workers: Optional[int] = None,
    executor: str = "process",
) -> SweepReport:
    """Solve a job grid with a :class:`BatchSolver` and aggregate the results."""
    solver = BatchSolver(cache=cache, max_workers=max_workers, executor=executor)
    return solver.solve_all(jobs)
