"""Batch-solving service: jobs, caching, parallel execution, racing, sweeps.

The library core (:mod:`repro.floorplan`) answers one floorplanning question
per blocking call.  This package turns those calls into *jobs* that a
production deployment can throw traffic at:

* :mod:`~repro.service.jobs` — :class:`SolveJob`, a serializable solve spec
  with a deterministic content hash;
* :mod:`~repro.service.cache` — :class:`SolveCache`, a content-addressed
  in-memory + JSON-on-disk result store;
* :mod:`~repro.service.executor` — :class:`BatchSolver`, a process-pool
  fan-out with job deduplication and streamed results;
* :mod:`~repro.service.portfolio` — strategy racing (O / HO variants /
  annealing) under a shared deadline;
* :mod:`~repro.service.sweep` — scenario grids (devices x workloads x
  relocation specs) expanded into job lists;
* :mod:`~repro.service.results` — :class:`JobResult` records and the
  aggregate :class:`SweepReport`.

Quickstart::

    from repro.service import BatchSolver, SolveCache, SolveJob

    cache = SolveCache("results/cache")
    solver = BatchSolver(cache=cache)
    report = solver.solve_all([SolveJob(problem) for problem in problems])
    print(report.summary())
    print(report.format())
"""

from repro.service.cache import (
    CACHE_SCHEMA_VERSION,
    CacheStats,
    SolveCache,
    cache_migration,
    migrate_entry,
)
from repro.service.executor import BatchSolver, execute_job
from repro.service.jobs import SolveJob
from repro.service.portfolio import (
    DEFAULT_STRATEGIES,
    PortfolioResult,
    Strategy,
    run_portfolio,
    run_strategy,
)
from repro.service.results import JobResult, SweepReport
from repro.service.sweep import constraint_for, run_sweep, sweep_jobs

__all__ = [
    "SolveJob",
    "SolveCache",
    "CacheStats",
    "CACHE_SCHEMA_VERSION",
    "cache_migration",
    "migrate_entry",
    "BatchSolver",
    "execute_job",
    "JobResult",
    "SweepReport",
    "Strategy",
    "DEFAULT_STRATEGIES",
    "PortfolioResult",
    "run_portfolio",
    "run_strategy",
    "sweep_jobs",
    "run_sweep",
    "constraint_for",
]
