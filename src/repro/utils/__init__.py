"""Small shared utilities (timing, deterministic RNG helpers)."""

from repro.utils.timing import Timer
from repro.utils.rng import make_rng

__all__ = ["Timer", "make_rng"]
