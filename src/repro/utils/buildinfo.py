"""Build identity for health endpoints: git revision, cached once.

``/healthz`` on the gateway and router reports the serving build so the
dashboard and fleet readiness probes can spot a replica running stale code
after a rolling restart.  The lookup shells out to git once per process and
caches the answer (including the ``"unknown"`` of a non-checkout install) —
health checks are hot paths and must not fork per probe.
"""

from __future__ import annotations

import functools
import os
import subprocess

__all__ = ["git_rev"]


@functools.lru_cache(maxsize=1)
def git_rev() -> str:
    """Short git revision of the running checkout, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
            # anchor to the installed package, not the caller's cwd: replica
            # subprocesses are launched from arbitrary working directories
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"
