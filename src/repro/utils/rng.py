"""Deterministic random-number-generation helpers.

All stochastic components of the repository (the annealer, the synthetic
workload generator, the property-based tests' data builders) take explicit
seeds and route them through :func:`make_rng`, so experiments are reproducible
bit-for-bit.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a ``numpy`` generator from a seed, passing generators through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
