"""Wall-clock timing helper used by solvers and benchmarks."""

from __future__ import annotations

import time


class Timer:
    """A context-manager stopwatch.

    Example
    -------
    >>> with Timer() as timer:
    ...     work()
    >>> print(timer.elapsed)
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start

    def lap(self) -> float:
        """Seconds since the timer was entered (without stopping it)."""
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start
