"""Capacity planning: minimum fleet size meeting an SLO, and capacity curves.

:func:`plan_min_devices` answers "how many devices for this traffic at this
SLO": it doubles the fleet size until the SLO passes, then binary-searches
the gap.  Serving capacity is monotone in fleet size for every dispatcher
shipped here (an added device only receives work others would have queued or
shed), which is what makes the binary search sound; every evaluated size is
recorded so the report can show the whole search trajectory.

:func:`capacity_curve` sweeps rate multipliers over the same scenario,
re-planning at each offered load — the "devices vs. load" curve a deployment
sizes its fleet from.

Everything is seeded and deterministic: the same scenario produces the same
evaluations, the same minimum, and (through :mod:`repro.capacity.report`)
byte-identical reports.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.capacity.dispatch import make_dispatcher
from repro.capacity.fleet import DeviceProfile, FleetConfig, FleetResult, FleetSimulation
from repro.sim.faults import FaultPlan, RandomFaults
from repro.sim.traffic import PoissonTraffic

__all__ = [
    "CapacitySLO",
    "CapacityScenario",
    "Evaluation",
    "PlanOutcome",
    "evaluate_slo",
    "plan_min_devices",
    "capacity_curve",
]


@dataclasses.dataclass(frozen=True)
class CapacitySLO:
    """The service-level objective a fleet size must meet.

    * ``max_p99_latency_s`` — served p99 arrival-to-finish latency cap;
    * ``max_blocking`` — cap on the fraction of offered requests shed or
      failed;
    * ``min_throughput_fraction`` — served/offered floor (throughput SLO
      expressed relative to offered load, so one knob works across the whole
      rate sweep).
    """

    max_p99_latency_s: float = 0.2
    max_blocking: float = 0.01
    min_throughput_fraction: float = 0.95

    def __post_init__(self) -> None:
        if self.max_p99_latency_s <= 0:
            raise ValueError("max_p99_latency_s must be positive")
        if not 0 <= self.max_blocking <= 1:
            raise ValueError("max_blocking must be within [0, 1]")
        if not 0 < self.min_throughput_fraction <= 1:
            raise ValueError("min_throughput_fraction must be within (0, 1]")


@dataclasses.dataclass(frozen=True)
class CapacityScenario:
    """One plannable workload: device type, traffic shape, failure regime."""

    profile: DeviceProfile
    rate: float  # offered requests per virtual second
    horizon: float = 100.0
    seed: int = 0
    modes_per_region: int = 3
    dispatcher: str = "least-loaded"
    fault_rate: float = 0.0  # per-device Poisson fault rate (0 = no faults)
    repair_time: float = 5.0
    queue_capacity: Optional[int] = 64

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.fault_rate < 0:
            raise ValueError("fault_rate must be non-negative")

    def build(self, num_devices: int, rate_multiplier: float = 1.0) -> FleetSimulation:
        """The seeded fleet simulation for one candidate size."""
        traffic = PoissonTraffic(
            self.profile.regions(),
            rate=self.rate * rate_multiplier,
            modes_per_region=self.modes_per_region,
            seed=self.seed,
        )
        fault_plans: Dict[str, FaultPlan] = {}
        if self.fault_rate > 0:
            for index in range(num_devices):
                name = f"{self.profile.name}-{index:03d}"
                fault_plans[name] = RandomFaults(
                    [name], rate=self.fault_rate, seed=self.seed + 1000 + index
                )
        return FleetSimulation(
            profile=self.profile,
            num_devices=num_devices,
            traffic=traffic,
            dispatcher=make_dispatcher(self.dispatcher),
            fault_plans=fault_plans,
            config=FleetConfig(
                horizon=self.horizon,
                queue_capacity=self.queue_capacity,
                repair_time=self.repair_time,
            ),
        )


@dataclasses.dataclass(frozen=True)
class Evaluation:
    """One evaluated fleet size: metrics plus the SLO verdict."""

    num_devices: int
    ok: bool
    failures: tuple
    metrics: Dict[str, float]


@dataclasses.dataclass(frozen=True)
class PlanOutcome:
    """The result of one minimum-fleet-size search."""

    min_devices: Optional[int]  # None: SLO unreachable within max_devices
    evaluations: tuple  # every Evaluation, in search order
    slo: CapacitySLO

    def evaluation_for(self, num_devices: int) -> Optional[Evaluation]:
        for evaluation in self.evaluations:
            if evaluation.num_devices == num_devices:
                return evaluation
        return None


def evaluate_slo(result: FleetResult, slo: CapacitySLO) -> Evaluation:
    """Check one fleet run against the SLO; lists every violated clause."""
    metrics = result.metrics()
    failures: List[str] = []
    throughput_fraction = metrics["throughput_fraction"]
    if metrics["p99_latency_s"] > slo.max_p99_latency_s:
        failures.append(
            f"p99 latency {metrics['p99_latency_s']:.6f}s > {slo.max_p99_latency_s}s"
        )
    if metrics["blocking_probability"] > slo.max_blocking:
        failures.append(
            f"blocking {metrics['blocking_probability']:.6f} > {slo.max_blocking}"
        )
    if throughput_fraction < slo.min_throughput_fraction:
        failures.append(
            f"throughput fraction {throughput_fraction:.6f} "
            f"< {slo.min_throughput_fraction}"
        )
    return Evaluation(
        num_devices=result.num_devices,
        ok=not failures,
        failures=tuple(failures),
        metrics=metrics,
    )


def plan_min_devices(
    scenario: CapacityScenario,
    slo: CapacitySLO,
    max_devices: int = 1024,
    rate_multiplier: float = 1.0,
) -> PlanOutcome:
    """The minimum fleet size meeting ``slo``, by doubling + binary search."""
    if max_devices <= 0:
        raise ValueError("max_devices must be positive")
    evaluations: List[Evaluation] = []

    def evaluate(num_devices: int) -> Evaluation:
        result = scenario.build(num_devices, rate_multiplier).run()
        evaluation = evaluate_slo(result, slo)
        evaluations.append(evaluation)
        return evaluation

    # doubling phase: find the first passing power of two (or give up)
    size = 1
    passing: Optional[int] = None
    failing = 0
    while size <= max_devices:
        evaluation = evaluate(size)
        if evaluation.ok:
            passing = size
            break
        failing = size
        size *= 2
    if passing is None:
        if failing < max_devices:  # last chance at the cap itself
            evaluation = evaluate(max_devices)
            if evaluation.ok:
                passing = max_devices
                failing = max(failing, max_devices // 2)
        if passing is None:
            return PlanOutcome(
                min_devices=None, evaluations=tuple(evaluations), slo=slo
            )

    # binary search (failing, passing]
    lo, hi = failing, passing
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if evaluate(mid).ok:
            hi = mid
        else:
            lo = mid
    return PlanOutcome(min_devices=hi, evaluations=tuple(evaluations), slo=slo)


def capacity_curve(
    scenario: CapacityScenario,
    slo: CapacitySLO,
    multipliers: Sequence[float],
    max_devices: int = 1024,
) -> List[Dict[str, object]]:
    """Minimum fleet size at each rate multiplier (the capacity curve)."""
    curve: List[Dict[str, object]] = []
    for multiplier in multipliers:
        if multiplier <= 0:
            raise ValueError("rate multipliers must be positive")
        outcome = plan_min_devices(
            scenario, slo, max_devices=max_devices, rate_multiplier=multiplier
        )
        point: Dict[str, object] = {
            "rate_multiplier": float(multiplier),
            "offered_rate": scenario.rate * multiplier,
            "min_devices": outcome.min_devices,
        }
        if outcome.min_devices is not None:
            evaluation = outcome.evaluation_for(outcome.min_devices)
            point["metrics"] = evaluation.metrics if evaluation else {}
        curve.append(point)
    return curve
