"""Deterministic JSON and markdown rendering of capacity plans.

The report is the planner's product, so it must be byte-identical across
runs of the same seeded scenario (the ``capacity-smoke`` CI job diffs two
runs): floats are rounded to a fixed precision before serialization, JSON is
emitted with sorted keys, and nothing time- or host-dependent is included.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.capacity.planner import CapacityScenario, CapacitySLO, PlanOutcome

__all__ = ["plan_document", "render_json", "render_markdown"]

SCHEMA = "repro.capacity/1"
_FLOAT_DIGITS = 9


def _round(value: float) -> float:
    return round(float(value), _FLOAT_DIGITS)


def _round_metrics(metrics: Dict[str, float]) -> Dict[str, float]:
    return {key: _round(value) for key, value in sorted(metrics.items())}


def plan_document(
    scenario: CapacityScenario,
    slo: CapacitySLO,
    outcome: PlanOutcome,
    curve: Optional[Sequence[Dict[str, object]]] = None,
) -> Dict[str, object]:
    """The whole plan as one JSON-serializable document."""
    document: Dict[str, object] = {
        "schema": SCHEMA,
        "scenario": {
            "profile": scenario.profile.name,
            "regions": {
                region: int(frames)
                for region, frames in sorted(scenario.profile.frame_counts.items())
            },
            "seconds_per_frame": _round(scenario.profile.seconds_per_frame),
            "ports_per_device": scenario.profile.num_ports,
            "rate": _round(scenario.rate),
            "horizon": _round(scenario.horizon),
            "seed": scenario.seed,
            "modes_per_region": scenario.modes_per_region,
            "dispatcher": scenario.dispatcher,
            "fault_rate": _round(scenario.fault_rate),
            "repair_time": _round(scenario.repair_time),
            "queue_capacity": scenario.queue_capacity,
        },
        "slo": {
            "max_p99_latency_s": _round(slo.max_p99_latency_s),
            "max_blocking": _round(slo.max_blocking),
            "min_throughput_fraction": _round(slo.min_throughput_fraction),
        },
        "min_devices": outcome.min_devices,
        "search": [
            {
                "num_devices": evaluation.num_devices,
                "ok": evaluation.ok,
                "failures": list(evaluation.failures),
                "metrics": _round_metrics(evaluation.metrics),
            }
            for evaluation in outcome.evaluations
        ],
    }
    if curve is not None:
        document["curve"] = [
            {
                "rate_multiplier": _round(point["rate_multiplier"]),
                "offered_rate": _round(point["offered_rate"]),
                "min_devices": point["min_devices"],
                "metrics": _round_metrics(point.get("metrics", {})),
            }
            for point in curve
        ]
    return document


def render_json(document: Dict[str, object]) -> str:
    """Canonical JSON (sorted keys, fixed indent, trailing newline)."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6f}"
    return str(value)


def render_markdown(document: Dict[str, object]) -> str:
    """The plan as a human-readable markdown report (deterministic)."""
    scenario = document["scenario"]
    slo = document["slo"]
    lines: List[str] = ["# Capacity plan", ""]
    minimum = document["min_devices"]
    if minimum is None:
        lines.append("**SLO not reachable within the searched fleet sizes.**")
    else:
        lines.append(
            f"**Minimum fleet size: {minimum} device(s)** for "
            f"{_fmt(scenario['rate'])} req/s "
            f"(p99 ≤ {_fmt(slo['max_p99_latency_s'])} s, "
            f"blocking ≤ {_fmt(slo['max_blocking'])}, "
            f"served/offered ≥ {_fmt(slo['min_throughput_fraction'])})."
        )
    lines.append("")

    lines.append("## Scenario")
    lines.append("")
    lines.extend(
        _markdown_table(
            ["parameter", "value"],
            [[key, _fmt(value)] for key, value in sorted(scenario.items())
             if key != "regions"]
            + [
                [f"frames[{region}]", frames]
                for region, frames in sorted(scenario["regions"].items())
            ],
        )
    )
    lines.append("")

    lines.append("## Search trajectory")
    lines.append("")
    lines.extend(
        _markdown_table(
            ["devices", "SLO", "p99 (s)", "blocking", "served/offered", "failures"],
            [
                [
                    step["num_devices"],
                    "pass" if step["ok"] else "fail",
                    _fmt(step["metrics"].get("p99_latency_s", 0.0)),
                    _fmt(step["metrics"].get("blocking_probability", 0.0)),
                    _fmt(step["metrics"].get("throughput_fraction", 0.0)),
                    "; ".join(step["failures"]) or "-",
                ]
                for step in document["search"]
            ],
        )
    )
    lines.append("")

    curve = document.get("curve")
    if curve:
        lines.append("## Capacity curve")
        lines.append("")
        lines.extend(
            _markdown_table(
                ["rate multiplier", "offered req/s", "min devices", "p99 (s)", "blocking"],
                [
                    [
                        _fmt(point["rate_multiplier"]),
                        _fmt(point["offered_rate"]),
                        point["min_devices"] if point["min_devices"] is not None else "-",
                        _fmt(point["metrics"].get("p99_latency_s", 0.0)),
                        _fmt(point["metrics"].get("blocking_probability", 0.0)),
                    ]
                    for point in curve
                ],
            )
        )
        lines.append("")
    return "\n".join(lines)
