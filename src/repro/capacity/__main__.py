"""Command-line capacity planner.

Answers "how many devices for X req/s at p99 < Y ms" on the paper-scale
two-region floorplan (or any profile the flags describe), optionally sweeping
rate multipliers into a capacity curve::

    python -m repro.capacity --rate 50 --p99 0.2 --sweep 0.5,1.0,2.0

The markdown report goes to stdout; ``--json``/``--markdown`` also write the
deterministic documents to files.  Two runs with the same flags produce
byte-identical output (the ``capacity-smoke`` CI job asserts this).

Exit codes: 0 = plan found, 2 = SLO unreachable within ``--max-devices``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.capacity.dispatch import dispatcher_names
from repro.capacity.fleet import DeviceProfile
from repro.capacity.planner import (
    CapacityScenario,
    CapacitySLO,
    capacity_curve,
    plan_min_devices,
)
from repro.capacity.report import plan_document, render_json, render_markdown
from repro.device.catalog import simple_two_type_device
from repro.floorplan.geometry import Rect


def default_profile(seconds_per_frame: float, num_ports: int) -> DeviceProfile:
    """The paper-scale profile: two 2x2 regions on the two-type device."""
    device = simple_two_type_device()
    return DeviceProfile.from_floorplan(
        device,
        {"A": Rect(0, 0, 2, 2), "B": Rect(5, 0, 2, 2)},
        seconds_per_frame=seconds_per_frame,
        num_ports=num_ports,
        name="v5-2region",
    )


def parse_multipliers(raw: Optional[str]) -> Optional[List[float]]:
    if not raw:
        return None
    return [float(part) for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.capacity",
        description="Plan the minimum FPGA fleet size meeting a traffic SLO.",
    )
    traffic = parser.add_argument_group("traffic")
    traffic.add_argument("--rate", type=float, default=50.0, help="offered req/s")
    traffic.add_argument("--horizon", type=float, default=120.0, help="virtual seconds")
    traffic.add_argument("--seed", type=int, default=0)
    traffic.add_argument("--modes-per-region", type=int, default=3)

    slo = parser.add_argument_group("slo")
    slo.add_argument("--p99", type=float, default=0.2, help="max p99 latency (s)")
    slo.add_argument("--blocking", type=float, default=0.01, help="max blocking prob.")
    slo.add_argument(
        "--throughput-fraction",
        type=float,
        default=0.95,
        help="min served/offered fraction",
    )

    fleet = parser.add_argument_group("fleet")
    fleet.add_argument(
        "--dispatcher", choices=dispatcher_names(), default="least-loaded"
    )
    fleet.add_argument("--max-devices", type=int, default=1024)
    fleet.add_argument("--ports", type=int, default=1, help="ports per device")
    fleet.add_argument("--seconds-per-frame", type=float, default=1e-4)
    fleet.add_argument("--queue-capacity", type=int, default=64)
    fleet.add_argument(
        "--fault-rate", type=float, default=0.0, help="per-device faults per second"
    )
    fleet.add_argument("--repair-time", type=float, default=5.0)

    output = parser.add_argument_group("output")
    output.add_argument(
        "--sweep", type=str, default=None, help="rate multipliers, e.g. 0.5,1.0,2.0"
    )
    output.add_argument("--json", type=str, default=None, help="write JSON report here")
    output.add_argument(
        "--markdown", type=str, default=None, help="write markdown report here"
    )
    output.add_argument(
        "--quiet", action="store_true", help="suppress stdout (files only)"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    profile = default_profile(args.seconds_per_frame, args.ports)
    scenario = CapacityScenario(
        profile=profile,
        rate=args.rate,
        horizon=args.horizon,
        seed=args.seed,
        modes_per_region=args.modes_per_region,
        dispatcher=args.dispatcher,
        fault_rate=args.fault_rate,
        repair_time=args.repair_time,
        queue_capacity=args.queue_capacity,
    )
    slo = CapacitySLO(
        max_p99_latency_s=args.p99,
        max_blocking=args.blocking,
        min_throughput_fraction=args.throughput_fraction,
    )

    outcome = plan_min_devices(scenario, slo, max_devices=args.max_devices)
    multipliers = parse_multipliers(args.sweep)
    curve = (
        capacity_curve(scenario, slo, multipliers, max_devices=args.max_devices)
        if multipliers
        else None
    )
    document = plan_document(scenario, slo, outcome, curve=curve)

    markdown = render_markdown(document)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(render_json(document))
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(markdown)
    if not args.quiet:
        sys.stdout.write(markdown)
    return 0 if outcome.min_devices is not None else 2


if __name__ == "__main__":
    raise SystemExit(main())
