"""Fleet-scale capacity planning on the vectorized simulation core.

``repro.capacity`` turns the discrete-event simulator into a planning tool:

* :mod:`~repro.capacity.fleet` simulates hundreds of devices under one
  shared traffic process — per-device ports, bounded queues, fault/repair
  cycles — with stats merged fleet-wide;
* :mod:`~repro.capacity.dispatch` provides the pluggable dispatchers
  (round-robin, least-loaded, consistent-hash mirroring the fleet router);
* :mod:`~repro.capacity.planner` binary-searches the minimum fleet size
  meeting a throughput + p99-latency + blocking SLO and sweeps rate
  multipliers into a capacity curve;
* :mod:`~repro.capacity.report` renders deterministic JSON/markdown reports.

Quickstart::

    from repro.capacity import (
        CapacityScenario, CapacitySLO, DeviceProfile, plan_min_devices,
    )

    profile = DeviceProfile("v5", {"A": 144, "B": 144}, seconds_per_frame=1e-4)
    scenario = CapacityScenario(profile, rate=50.0, horizon=120.0, seed=7)
    outcome = plan_min_devices(scenario, CapacitySLO(max_p99_latency_s=0.2))
    print(outcome.min_devices)

or from the command line::

    python -m repro.capacity --rate 50 --p99 0.2 --sweep 0.5,1.0,2.0
"""

from repro.capacity.dispatch import (
    ConsistentHash,
    Dispatcher,
    LeastLoaded,
    RoundRobin,
    dispatcher_names,
    make_dispatcher,
)
from repro.capacity.fleet import (
    DeviceProfile,
    FleetConfig,
    FleetResult,
    FleetSimulation,
)
from repro.capacity.planner import (
    CapacityScenario,
    CapacitySLO,
    Evaluation,
    PlanOutcome,
    capacity_curve,
    evaluate_slo,
    plan_min_devices,
)
from repro.capacity.report import plan_document, render_json, render_markdown

__all__ = [
    # dispatch
    "Dispatcher",
    "RoundRobin",
    "LeastLoaded",
    "ConsistentHash",
    "make_dispatcher",
    "dispatcher_names",
    # fleet
    "DeviceProfile",
    "FleetConfig",
    "FleetResult",
    "FleetSimulation",
    # planner
    "CapacitySLO",
    "CapacityScenario",
    "Evaluation",
    "PlanOutcome",
    "evaluate_slo",
    "plan_min_devices",
    "capacity_curve",
    # report
    "plan_document",
    "render_json",
    "render_markdown",
]
