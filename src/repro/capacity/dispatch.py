"""Pluggable request dispatchers for the fleet simulation.

A dispatcher picks which device serves an arriving request, mirroring the
router policies of :mod:`repro.fleet`: :class:`LeastLoaded` models an
omniscient load balancer, :class:`ConsistentHash` reuses the
:class:`~repro.fleet.hashing.HashRing` (region name as the key, the ring's
``preference`` chain as deterministic failover past down/full devices) so a
region's bitstreams stay hot in one device's cache, and :class:`RoundRobin`
is the baseline spray.  All three are deterministic: given the same request
sequence and device states they make the same choices.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro.fleet.hashing import DEFAULT_VNODES, HashRing
from repro.sim.traffic import ModeRequest

__all__ = ["Dispatcher", "RoundRobin", "LeastLoaded", "ConsistentHash", "make_dispatcher"]


class Dispatcher(abc.ABC):
    """Chooses the serving device for each arrival."""

    @abc.abstractmethod
    def assign(self, request: ModeRequest, devices: Sequence) -> Optional[object]:
        """The device that should serve ``request`` (``None`` = shed it).

        ``devices`` are the fleet's device states in fixed index order; each
        exposes ``name``, ``index`` and ``can_accept()`` (up, with a free
        port or queue headroom).
        """


class RoundRobin(Dispatcher):
    """Cycle through devices, skipping ones that cannot accept."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def assign(self, request: ModeRequest, devices: Sequence) -> Optional[object]:
        count = len(devices)
        for offset in range(count):
            device = devices[(self._next + offset) % count]
            if device.can_accept():
                self._next = (device.index + 1) % count
                return device
        return None


class LeastLoaded(Dispatcher):
    """Send each request to the acceptable device with the fewest in flight."""

    name = "least-loaded"

    def assign(self, request: ModeRequest, devices: Sequence) -> Optional[object]:
        best = None
        for device in devices:
            if not device.can_accept():
                continue
            key = (device.load, device.index)  # index breaks ties deterministically
            if best is None or key < best[0]:
                best = (key, device)
        return best[1] if best is not None else None


class ConsistentHash(Dispatcher):
    """Route by region through a :class:`HashRing`, with ring-order failover.

    The same region always lands on the same device while it is healthy —
    the fleet-router affinity semantics — and fails over along the ring's
    deterministic preference chain when the owner is down or full.
    """

    name = "consistent-hash"

    def __init__(self, vnodes: int = DEFAULT_VNODES) -> None:
        self.vnodes = vnodes
        self._ring: Optional[HashRing] = None
        self._names: Optional[tuple] = None

    def assign(self, request: ModeRequest, devices: Sequence) -> Optional[object]:
        names = tuple(device.name for device in devices)
        if names != self._names:
            self._ring = HashRing(names, vnodes=self.vnodes)
            self._names = names
        by_name = {device.name: device for device in devices}
        for name in self._ring.preference(request.region):
            device = by_name[name]
            if device.can_accept():
                return device
        return None


_DISPATCHERS = {
    RoundRobin.name: RoundRobin,
    LeastLoaded.name: LeastLoaded,
    ConsistentHash.name: ConsistentHash,
}


def make_dispatcher(name: str) -> Dispatcher:
    """Instantiate a dispatcher by its CLI name."""
    try:
        return _DISPATCHERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown dispatcher {name!r}; pick one of {sorted(_DISPATCHERS)}"
        ) from None


def dispatcher_names() -> List[str]:
    """The CLI names of every registered dispatcher."""
    return sorted(_DISPATCHERS)
