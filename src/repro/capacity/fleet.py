"""Multi-device fleet simulation on the vectorized sim core.

Hundreds of devices share one traffic process: a :class:`Dispatcher` assigns
each arrival to a device, each device serves reconfigurations through its own
(serial) ICAP ports with a bounded queue, per-device fault plans knock
devices out for ``repair_time`` virtual seconds, and every request lands in a
per-device :class:`~repro.sim.stats.SimStats` that merges into one fleet
roll-up.

The per-device model is deliberately lighter than
:class:`~repro.sim.engine.SimulationEngine`: a :class:`DeviceProfile` carries
the configuration-frame count per region (frames depend only on the placed
rectangle, not the mode — see :func:`repro.bitstream.frames.frame_count`), so
service time is ``frames * seconds_per_frame`` without touching the bitstream
machinery.  That is what makes binary-searching fleet sizes over hundreds of
devices tractable, while staying calibrated to the single-device engine.

Determinism: one :class:`~repro.sim.events.EventQueue` orders everything by
``(time, kind, seq)``; traffic and fault streams are seeded; dispatchers are
deterministic.  Two runs of the same scenario produce identical stats.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bitstream.frames import frame_count
from repro.capacity.dispatch import Dispatcher
from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue, SimEventKind
from repro.sim.faults import FaultPlan
from repro.sim.stats import RequestRecord, SimStats
from repro.sim.traffic import ModeRequest, TrafficModel

__all__ = ["DeviceProfile", "FleetConfig", "FleetResult", "FleetSimulation"]


@dataclasses.dataclass(frozen=True)
class DeviceProfile:
    """Service characteristics of one device type.

    ``frame_counts`` maps each region to the configuration frames a
    reconfiguration writes; service time is ``frames * seconds_per_frame``.
    """

    name: str
    frame_counts: Mapping[str, int]
    seconds_per_frame: float = 1e-4
    num_ports: int = 1

    def __post_init__(self) -> None:
        if not self.frame_counts:
            raise ValueError("a device profile needs at least one region")
        if self.seconds_per_frame <= 0:
            raise ValueError("seconds_per_frame must be positive")
        if self.num_ports <= 0:
            raise ValueError("num_ports must be positive")

    @classmethod
    def from_floorplan(
        cls,
        device,
        placements: Mapping[str, "object"],
        seconds_per_frame: float = 1e-4,
        num_ports: int = 1,
        name: Optional[str] = None,
    ) -> "DeviceProfile":
        """Derive frame counts from a device model and per-region rectangles."""
        counts = {
            region: frame_count(device, rect) for region, rect in placements.items()
        }
        return cls(
            name=name or device.name,
            frame_counts=dict(sorted(counts.items())),
            seconds_per_frame=seconds_per_frame,
            num_ports=num_ports,
        )

    def service_time(self, region: str) -> float:
        """Seconds one reconfiguration of ``region`` occupies a port."""
        return self.frame_counts[region] * self.seconds_per_frame

    def regions(self) -> List[str]:
        return sorted(self.frame_counts)


@dataclasses.dataclass
class FleetConfig:
    """Knobs of one fleet run."""

    horizon: float = 100.0
    queue_capacity: Optional[int] = 64  # per device; None = unbounded
    repair_time: float = 5.0

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.queue_capacity is not None and self.queue_capacity < 0:
            raise ValueError("queue_capacity must be non-negative")
        if self.repair_time <= 0:
            raise ValueError("repair_time must be positive")


@dataclasses.dataclass
class _Pending:
    request_id: int
    request: ModeRequest
    arrival: float
    start: float = 0.0


class _Device:
    """Run-time state of one fleet device."""

    def __init__(self, index: int, name: str, profile: DeviceProfile, config: FleetConfig):
        self.index = index
        self.name = name
        self.profile = profile
        self.config = config
        self.free_ports = profile.num_ports
        self.queue: Deque[_Pending] = deque()
        self.up = True
        self.stats = SimStats()
        self.downtime = 0.0
        self._down_since = 0.0

    @property
    def load(self) -> int:
        """In-flight work: busy ports plus queued requests."""
        return (self.profile.num_ports - self.free_ports) + len(self.queue)

    def can_accept(self) -> bool:
        if not self.up:
            return False
        if self.free_ports > 0:
            return True
        capacity = self.config.queue_capacity
        return capacity is None or len(self.queue) < capacity


@dataclasses.dataclass
class FleetResult:
    """Everything one fleet run produced."""

    stats: SimStats  # fleet-wide roll-up (includes shed arrivals)
    per_device: Dict[str, SimStats]
    num_devices: int
    config: FleetConfig
    makespan: float
    events_processed: int
    offered: int
    downtime: Dict[str, float]

    @property
    def served_throughput(self) -> float:
        """Successfully served requests per virtual second of traffic horizon."""
        return len(self.stats.served) / self.config.horizon

    def metrics(self) -> Dict[str, float]:
        """The SLO-relevant scalars of this run."""
        summary = self.stats.latency_summary()["latency"]
        served = len(self.stats.served)
        return {
            "offered": float(self.offered),
            "served": float(served),
            "served_throughput": self.served_throughput,
            "throughput_fraction": served / self.offered if self.offered else 1.0,
            "blocking_probability": self.stats.blocking_probability,
            "p50_latency_s": float(summary.get("p50", 0.0)),
            "p99_latency_s": float(summary.get("p99", 0.0)),
            "max_latency_s": float(summary.get("max", 0.0)),
            "total_downtime_s": float(sum(self.downtime.values())),
        }


class FleetSimulation:
    """Plays one shared traffic process over ``num_devices`` devices."""

    def __init__(
        self,
        profile: DeviceProfile,
        num_devices: int,
        traffic: TrafficModel,
        dispatcher: Dispatcher,
        fault_plans: Optional[Mapping[str, FaultPlan]] = None,
        config: Optional[FleetConfig] = None,
    ) -> None:
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        self.profile = profile
        self.traffic = traffic
        self.dispatcher = dispatcher
        self.config = config or FleetConfig()
        self.clock = VirtualClock()
        self._queue = EventQueue()
        self.devices = [
            _Device(index, f"{profile.name}-{index:03d}", profile, self.config)
            for index in range(num_devices)
        ]
        self.fault_plans = dict(fault_plans or {})
        self._shed = 0
        self._offered = 0
        self._events_processed = 0

    # ------------------------------------------------------------------
    def run(self) -> FleetResult:
        horizon = self.config.horizon
        self._queue.push_batch(
            (
                request.time,
                SimEventKind.ARRIVAL,
                _Pending(request_id=index, request=request, arrival=request.time),
            )
            for index, request in enumerate(self.traffic.generate(horizon))
        )
        by_name = {device.name: device for device in self.devices}
        for name in sorted(self.fault_plans):
            device = by_name.get(name)
            if device is None:
                continue
            self._queue.push_batch(
                (event.time, SimEventKind.FAULT, device)
                for event in self.fault_plans[name].events(horizon)
            )

        while self._queue:
            event = self._queue.pop()
            self.clock.advance_to(event.time)
            self._events_processed += 1
            if event.kind is SimEventKind.ARRIVAL:
                self._on_arrival(event.payload)
            elif event.kind is SimEventKind.COMPLETE:
                self._on_complete(event.payload)
            elif event.kind is SimEventKind.FAULT:
                self._on_fault(event.payload)
            else:
                self._on_repair(event.payload)

        per_device = {device.name: device.stats for device in self.devices}
        stats = SimStats.merged([device.stats for device in self.devices])
        stats.rejected_arrivals += self._shed
        return FleetResult(
            stats=stats,
            per_device=per_device,
            num_devices=len(self.devices),
            config=self.config,
            makespan=self.clock.now,
            events_processed=self._events_processed,
            offered=self._offered,
            downtime={
                device.name: device.downtime
                for device in self.devices
                if device.downtime > 0.0
            },
        )

    # ------------------------------------------------------------------
    def _on_arrival(self, pending: _Pending) -> None:
        self._offered += 1
        device = self.dispatcher.assign(pending.request, self.devices)
        if device is None:
            self._shed += 1  # no device can accept: shed at the front door
            return
        if device.up and device.free_ports > 0:
            self._start(device, pending)
        else:
            device.queue.append(pending)

    def _on_complete(self, payload: Tuple[_Device, _Pending]) -> None:
        device, pending = payload
        device.free_ports += 1
        device.stats.record(
            RequestRecord(
                request_id=pending.request_id,
                region=pending.request.region,
                mode=pending.request.mode,
                arrival=pending.arrival,
                start=pending.start,
                finish=self.clock.now,
                action="reconfigure",
                frames=device.profile.frame_counts[pending.request.region],
                ok=True,
                detail=device.name,
            )
        )
        self._drain(device)

    def _on_fault(self, device: _Device) -> None:
        if device.up:
            device.up = False
            device._down_since = self.clock.now
            device.stats.record_fault(self.clock.now)
        # re-faulting a down device extends nothing: repair is already queued
        self._queue.push(
            self.clock.now + self.config.repair_time, SimEventKind.REPAIR, device
        )

    def _on_repair(self, device: _Device) -> None:
        if device.up:
            return
        device.up = True
        device.downtime += self.clock.now - device._down_since
        self._drain(device)

    # ------------------------------------------------------------------
    def _start(self, device: _Device, pending: _Pending) -> None:
        device.free_ports -= 1
        pending.start = self.clock.now
        service = device.profile.service_time(pending.request.region)
        self._queue.push(
            self.clock.now + service, SimEventKind.COMPLETE, (device, pending)
        )

    def _drain(self, device: _Device) -> None:
        while device.up and device.free_ports > 0 and device.queue:
            self._start(device, device.queue.popleft())
