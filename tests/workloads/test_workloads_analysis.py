"""Tests for the SDR/synthetic workloads and the reporting/rendering helpers."""

import pytest

from repro.analysis import format_table, render_device, render_floorplan, render_partition
from repro.analysis.report import TABLE1_HEADERS, TABLE2_HEADERS, floorplan_report, table1_rows, table2_rows
from repro.device import ResourceType
from repro.floorplan import Rect
from repro.floorplan.placement import Floorplan
from repro.workloads import (
    SDR_REGION_NAMES,
    sdr_problem,
    sdr2_spec,
    sdr3_spec,
    synthetic_problem,
    SyntheticWorkloadConfig,
)
from repro.workloads.sdr import SDR_FRAMES, SDR_RELOCATABLE, mini_sdr_problem


class TestSdrWorkload:
    def test_table1_requirements_and_frames(self):
        """Every row of Table I is reproduced exactly."""
        problem = sdr_problem()
        totals = {"CLB": 0, "BRAM": 0, "DSP": 0}
        for region in problem.regions:
            assert problem.required_frames(region) == SDR_FRAMES[region.name]
            for rtype, count in region.requirements:
                totals[rtype.value] += count
        assert totals == {"CLB": 104, "BRAM": 5, "DSP": 11}
        assert problem.total_required_frames() == 4202

    def test_region_names_and_connections(self):
        problem = sdr_problem()
        assert problem.region_names == SDR_REGION_NAMES
        # sequential 64-bit bus between consecutive modules
        assert len(problem.connections) == 4
        assert all(c.weight == 64.0 for c in problem.connections)

    def test_specs(self):
        assert sdr2_spec().total_copies == 6
        assert sdr3_spec().total_copies == 9
        assert set(sdr2_spec().regions) == set(SDR_RELOCATABLE)
        assert not sdr2_spec(hard=False).has_hard_requests

    def test_device_fits_demand(self):
        problem = sdr_problem()
        capacity = problem.device.total_resources()
        demand = {"CLB": 104, "BRAM": 5, "DSP": 11}
        for name, amount in demand.items():
            assert capacity.get(ResourceType[name]) >= amount

    def test_mini_sdr_is_consistent(self):
        problem = mini_sdr_problem()
        assert len(problem.regions) == 5
        assert problem.total_required_frames() > 0


class TestSyntheticWorkload:
    def test_generation_is_seeded(self):
        a = synthetic_problem(config=SyntheticWorkloadConfig(seed=3))
        b = synthetic_problem(config=SyntheticWorkloadConfig(seed=3))
        assert [r.requirements.as_dict() for r in a.regions] == [
            r.requirements.as_dict() for r in b.regions
        ]

    def test_utilization_respected(self):
        config = SyntheticWorkloadConfig(num_regions=4, utilization=0.4, seed=1)
        problem = synthetic_problem(config=config)
        capacity = problem.device.total_resources()
        demand = sum((r.requirements for r in problem.regions), start=capacity.zero())
        assert demand.get(ResourceType.CLB) <= capacity.get(ResourceType.CLB) * 0.5

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadConfig(num_regions=0)
        with pytest.raises(ValueError):
            SyntheticWorkloadConfig(utilization=0.99)

    def test_chain_connectivity(self):
        problem = synthetic_problem(config=SyntheticWorkloadConfig(num_regions=5, seed=2))
        assert len(problem.connections) == 4


class TestReportingAndRendering:
    def test_table1_rows_match_paper(self):
        problem = sdr_problem()
        rows = table1_rows(problem)
        assert len(rows) == 6  # 5 regions + total
        assert rows[-1] == ["Total", 104, 5, 11, 4202]
        text = format_table(TABLE1_HEADERS, rows, title="Table I")
        assert "Matched Filter" in text and "4202" in text

    def test_table2_rows_handle_missing_entries(self, tiny_solution):
        rows = table2_rows({
            "PA": ("tiny", tiny_solution.floorplan),
            "[8]": ("tiny", None),
        })
        assert rows[0][0] == "PA" and rows[1][2] == "-"
        assert len(TABLE2_HEADERS) == 4

    def test_floorplan_report_keys(self, tiny_solution):
        report = floorplan_report(tiny_solution.floorplan)
        for key in ("wasted_frames", "wirelength", "free_compatible_areas", "solver_status"):
            assert key in report

    def test_render_device_and_partition(self, fx70t_device):
        from repro.device.partition import columnar_partition

        text = render_device(fx70t_device)
        assert "#" in text and "legend" in text
        partition_text = render_partition(columnar_partition(fx70t_device))
        assert "portions:" in partition_text and "forbidden:" in partition_text

    def test_render_floorplan_lists_all_areas(self, tiny_relocation_solution):
        report, _ = tiny_relocation_solution
        text = render_floorplan(report.floorplan)
        assert "regions:" in text
        assert "free-compatible areas:" in text
        for name in report.floorplan.placements:
            assert name in text

    def test_render_manual_floorplan(self, tiny_problem):
        floorplan = Floorplan.from_rects(
            tiny_problem, {"alpha": Rect(0, 0, 2, 2), "beta": Rect(3, 0, 2, 1), "gamma": Rect(6, 0, 2, 1)}
        )
        text = render_floorplan(floorplan)
        assert "alpha" in text
