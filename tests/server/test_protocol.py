"""Wire-protocol round trips: encode -> decode must be fingerprint-exact."""

import pytest

from repro.device.catalog import synthetic_device, virtex5_fx70t_like
from repro.device.resources import ResourceVector
from repro.floorplan.metrics import ObjectiveWeights
from repro.floorplan.problem import Connection, FloorplanProblem, IOPin, Region
from repro.milp import SolverOptions
from repro.relocation.spec import RelocationSpec
from repro.server.protocol import (
    ProtocolError,
    device_from_dict,
    job_from_dict,
    job_to_dict,
    problem_from_dict,
)
from repro.service.jobs import SolveJob, device_spec_dict, problem_spec_dict


def rich_problem():
    device = synthetic_device(12, 5, bram_every=4, dsp_every=9, name="proto-dev")
    return FloorplanProblem(
        device,
        [
            Region("A", ResourceVector(CLB=4), max_width=6),
            Region("B", ResourceVector(CLB=2, BRAM=1), max_height=3),
        ],
        [Connection("A", "B", weight=16), Connection("A", "pad", weight=2)],
        [IOPin("pad", 0, 0)],
        name="proto",
    )


def rich_job(**overrides):
    defaults = dict(
        problem=rich_problem(),
        relocation=RelocationSpec.as_metric({"B": 2}, weights={"B": 1.5}),
        mode="HO",
        options=SolverOptions(time_limit=12.5, mip_gap=0.07, backend="highs"),
        heuristic="first-fit",
        weights=ObjectiveWeights(wirelength=0.2, wasted_frames=1.0),
        lexicographic=False,
        tag="wire",
    )
    defaults.update(overrides)
    return SolveJob(**defaults)


class TestDeviceRoundTrip:
    def test_synthetic_device(self):
        device = synthetic_device(12, 5, bram_every=4, dsp_every=9, name="rt-dev")
        again = device_from_dict(device_spec_dict(device))
        assert device_spec_dict(again) == device_spec_dict(device)

    def test_forbidden_cells_survive(self):
        device = virtex5_fx70t_like()  # has a forbidden PPC block
        spec = device_spec_dict(device)
        assert spec["forbidden"], "fixture device should carry forbidden cells"
        again = device_from_dict(spec)
        assert device_spec_dict(again) == spec

    def test_grid_length_mismatch_rejected(self):
        spec = device_spec_dict(synthetic_device(6, 4, name="bad"))
        spec["grid"] = spec["grid"][:-1]
        with pytest.raises(ProtocolError, match="cells"):
            device_from_dict(spec)

    def test_unknown_type_index_rejected(self):
        spec = device_spec_dict(synthetic_device(6, 4, name="bad2"))
        spec["grid"] = [99] * (spec["width"] * spec["height"])
        with pytest.raises(ProtocolError):
            device_from_dict(spec)

    def test_negative_type_index_rejected_not_wrapped(self):
        spec = device_spec_dict(synthetic_device(6, 4, name="bad3"))
        spec["grid"] = [-1] + list(spec["grid"])[1:]
        with pytest.raises(ProtocolError, match="unknown tile-type index"):
            device_from_dict(spec)

    def test_non_numeric_grid_cell_rejected(self):
        spec = device_spec_dict(synthetic_device(6, 4, name="bad4"))
        grid = list(spec["grid"])
        grid[0] = None
        spec["grid"] = grid
        with pytest.raises(ProtocolError, match="tile-type indices"):
            device_from_dict(spec)


class TestJobRoundTrip:
    def test_fingerprint_exact(self):
        job = rich_job()
        again = job_from_dict(job_to_dict(job))
        assert again.fingerprint == job.fingerprint
        assert again.tag == "wire"
        assert again.mode == "HO"
        assert again.options == job.options

    def test_problem_round_trip(self):
        problem = rich_problem()
        again = problem_from_dict(problem_spec_dict(problem))
        assert problem_spec_dict(again) == problem_spec_dict(problem)

    def test_defaults_fill_in(self):
        payload = {"problem": problem_spec_dict(rich_problem())}
        job = job_from_dict(payload)
        assert job.mode == "HO"
        assert job.relocation is None
        assert job.weights is None
        assert not job.lexicographic

    def test_relocation_round_trip_changes_fingerprint(self):
        with_reloc = rich_job()
        without = rich_job(relocation=None)
        assert (
            job_from_dict(job_to_dict(with_reloc)).fingerprint
            != job_from_dict(job_to_dict(without)).fingerprint
        )

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("problem"),
            lambda p: p.__setitem__("mode", "X"),
            lambda p: p["problem"].__setitem__("regions", []),
            lambda p: p["problem"].pop("device"),
            lambda p: p.__setitem__("weights", {"wirelength": -1.0}),
            lambda p: p.__setitem__("relocation", [{"region": "B", "copies": 0}]),
        ],
    )
    def test_malformed_payloads_raise_protocol_error(self, mutate):
        payload = job_to_dict(rich_job())
        mutate(payload)
        with pytest.raises((ProtocolError, ValueError)):
            job_from_dict(payload)

    def test_non_mapping_body_rejected(self):
        with pytest.raises(ProtocolError):
            job_from_dict([1, 2, 3])
