"""Mergeable histogram snapshots and the machine-readable /metrics form."""

import asyncio

import pytest

from repro.server.gateway import BackgroundGateway, GatewayConfig
from repro.server.loadgen import GatewayClient
from repro.server.metrics import LatencyHistogram, merge_raw_histograms


def filled(samples, bounds=None) -> LatencyHistogram:
    histogram = LatencyHistogram(bounds=bounds)
    for sample in samples:
        histogram.observe(sample)
    return histogram


class TestRawRoundTrip:
    def test_round_trip_preserves_everything(self):
        original = filled([0.001, 0.01, 0.01, 2.5])
        rebuilt = LatencyHistogram.from_raw(original.raw())
        assert rebuilt.bounds == original.bounds
        assert rebuilt.counts == original.counts
        assert rebuilt.count == 4
        assert rebuilt.total == pytest.approx(original.total)
        assert rebuilt.min == pytest.approx(0.001)
        assert rebuilt.max == pytest.approx(2.5)
        assert rebuilt.summary() == original.summary()

    def test_empty_round_trip(self):
        raw = LatencyHistogram().raw()
        assert raw["min"] is None  # inf is not JSON-safe
        rebuilt = LatencyHistogram.from_raw(raw)
        assert rebuilt.count == 0
        assert rebuilt.min == float("inf")

    def test_raw_survives_json(self):
        import json

        raw = filled([0.05, 0.5]).raw()
        assert LatencyHistogram.from_raw(json.loads(json.dumps(raw))).count == 2


class TestFromRawValidation:
    def test_counts_length_must_match_bounds(self):
        raw = filled([0.1]).raw()
        raw["counts"] = raw["counts"][:-2]
        with pytest.raises(ValueError, match="counts length"):
            LatencyHistogram.from_raw(raw)

    def test_negative_counts_rejected(self):
        raw = filled([0.1]).raw()
        raw["counts"][0] = -1
        with pytest.raises(ValueError, match="non-negative"):
            LatencyHistogram.from_raw(raw)

    def test_count_must_equal_bucket_sum(self):
        raw = filled([0.1, 0.2]).raw()
        raw["count"] = 7
        with pytest.raises(ValueError, match="bucket-count sum"):
            LatencyHistogram.from_raw(raw)


class TestMerge:
    def test_merge_sums_buckets_and_tracks_extrema(self):
        left = filled([0.001, 0.1])
        right = filled([0.1, 9.0])
        left.merge(right)
        assert left.count == 4
        assert left.min == pytest.approx(0.001)
        assert left.max == pytest.approx(9.0)
        assert left.total == pytest.approx(0.001 + 0.1 + 0.1 + 9.0)

    def test_merged_quantiles_match_a_single_histogram(self):
        # merging N shards is exact: same buckets as observing everything
        # in one histogram
        samples = [0.001 * (i + 1) for i in range(100)]
        combined = filled(samples)
        shard_a = filled(samples[:50])
        shard_b = filled(samples[50:])
        shard_a.merge(shard_b)
        assert shard_a.counts == combined.counts
        for q in (0.5, 0.9, 0.99):
            assert shard_a.quantile(q) == combined.quantile(q)

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError, match="different bounds"):
            filled([0.1]).merge(filled([0.1], bounds=[1.0, 2.0]))

    def test_merge_raw_histograms(self):
        raws = [filled([0.01]).raw(), filled([0.1]).raw(), filled([1.0]).raw()]
        merged = merge_raw_histograms(raws)
        assert merged.count == 3
        assert merged.max == pytest.approx(1.0)

    def test_merge_raw_histograms_of_nothing_is_empty(self):
        assert merge_raw_histograms([]).count == 0


class TestMetricsJsonEndpoint:
    def test_format_json_serves_raw_histograms(self):
        from repro.server.loadgen import demo_payloads

        payload = demo_payloads(unique=1, time_limit=20.0)[0]
        config = GatewayConfig(port=0, shards=1, batch_workers=1, executor="serial")
        with BackgroundGateway(config) as gw:
            async def scenario():
                async with GatewayClient(gw.host, gw.port) as client:
                    await client.solve(payload)
                    await client.solve(payload)  # one miss + one hit
                    _status, formatted = await client.metrics()
                    status, machine = await client.request(
                        "GET", "/metrics?format=json"
                    )
                    return formatted, status, machine

            formatted, status, machine = asyncio.run(scenario())
        assert status == 200
        assert "tables" in formatted and "histograms" not in formatted
        assert "histograms" in machine and "tables" not in machine
        histograms = machine["histograms"]
        assert set(histograms) == {"request", "cache_hit", "solve_miss", "batch_size"}
        assert histograms["request"]["count"] == 2
        assert histograms["cache_hit"]["count"] == 1
        assert histograms["solve_miss"]["count"] == 1
        # the raw form is exactly what the fleet roll-up merges
        merged = merge_raw_histograms(
            [histograms["request"], histograms["request"]]
        )
        assert merged.count == 4
