"""Micro-batcher coalescing/dedup/drain and worker-shard execution."""

import asyncio

import pytest

from repro.milp import SolverOptions
from repro.server.batcher import MicroBatcher
from repro.server.workers import WorkerPool
from repro.service.cache import SolveCache
from repro.service.jobs import SolveJob
from repro.service.results import JobResult
from repro.workloads.synthetic import SyntheticWorkloadConfig, synthetic_problem


def make_job(seed: int = 0, time_limit: float = 30.0) -> SolveJob:
    problem = synthetic_problem(
        config=SyntheticWorkloadConfig(num_regions=2, seed=seed)
    )
    return SolveJob(problem, options=SolverOptions(time_limit=time_limit, mip_gap=0.1))


def canned_result(job: SolveJob) -> JobResult:
    return JobResult(
        fingerprint=job.fingerprint,
        job_name=job.name,
        status="optimal",
        feasible=True,
        objective=1.0,
        solve_time=0.0,
        wall_time=0.0,
        backend="stub",
        mode=job.mode,
    )


class RecordingSolver:
    """A solve_batch stub that records batches and answers instantly."""

    def __init__(self, delay: float = 0.0, fail: bool = False) -> None:
        self.batches = []
        self.delay = delay
        self.fail = fail

    async def __call__(self, jobs, budgets=None):
        self.batches.append([job.fingerprint for job in jobs])
        if self.delay:
            await asyncio.sleep(self.delay)
        if self.fail:
            raise RuntimeError("shard exploded")
        return {job.fingerprint: canned_result(job) for job in jobs}


class TestMicroBatcher:
    def test_size_trigger_coalesces(self):
        async def scenario():
            solver = RecordingSolver()
            batcher = MicroBatcher(solver, max_batch=3, max_wait=60.0)
            jobs = [make_job(seed) for seed in range(3)]
            results = await asyncio.gather(*(batcher.submit(job) for job in jobs))
            assert len(solver.batches) == 1  # one flush at max_batch
            assert sorted(solver.batches[0]) == sorted(j.fingerprint for j in jobs)
            assert [r.fingerprint for r in results] == [j.fingerprint for j in jobs]

        asyncio.run(scenario())

    def test_window_trigger_flushes_partial_batch(self):
        async def scenario():
            solver = RecordingSolver()
            batcher = MicroBatcher(solver, max_batch=100, max_wait=0.02)
            result = await asyncio.wait_for(batcher.submit(make_job(1)), timeout=5.0)
            assert result.status == "optimal"
            assert len(solver.batches) == 1

        asyncio.run(scenario())

    def test_duplicates_deduplicated_and_fanned_out(self):
        async def scenario():
            solver = RecordingSolver()
            batcher = MicroBatcher(solver, max_batch=4, max_wait=60.0)
            job = make_job(7)
            copies = [make_job(7) for _ in range(3)] + [make_job(8)]
            results = await asyncio.gather(*(batcher.submit(j) for j in copies))
            # the batch carried 2 unique fingerprints, not 4
            assert len(solver.batches) == 1
            assert len(solver.batches[0]) == 2
            assert {r.fingerprint for r in results[:3]} == {job.fingerprint}
            # first waiter of a fingerprint pays the solve, the rest are
            # flagged as deduplicated copies
            assert [r.cached for r in results[:3]] == [False, True, True]
            assert results[3].cached is False

        asyncio.run(scenario())

    def test_worker_failure_fails_all_waiters(self):
        async def scenario():
            batcher = MicroBatcher(RecordingSolver(fail=True), max_batch=2, max_wait=60.0)
            jobs = [make_job(1), make_job(2)]
            results = await asyncio.gather(
                *(batcher.submit(job) for job in jobs), return_exceptions=True
            )
            assert all(isinstance(r, RuntimeError) for r in results)

        asyncio.run(scenario())

    def test_queue_depth_tracks_pending_and_inflight(self):
        async def scenario():
            solver = RecordingSolver(delay=0.05)
            batcher = MicroBatcher(solver, max_batch=2, max_wait=60.0)
            assert batcher.queue_depth == 0
            task_a = asyncio.ensure_future(batcher.submit(make_job(1)))
            await asyncio.sleep(0)
            assert batcher.queue_depth == 1  # pending in the window
            task_b = asyncio.ensure_future(batcher.submit(make_job(2)))
            await asyncio.sleep(0.01)
            assert batcher.queue_depth == 2  # flushed, in flight
            await asyncio.gather(task_a, task_b)
            assert batcher.queue_depth == 0

        asyncio.run(scenario())

    def test_drain_flushes_and_refuses_new_work(self):
        async def scenario():
            solver = RecordingSolver(delay=0.02)
            batcher = MicroBatcher(solver, max_batch=100, max_wait=60.0)
            task = asyncio.ensure_future(batcher.submit(make_job(3)))
            await asyncio.sleep(0)  # let the submit enqueue
            await batcher.drain()
            assert (await task).status == "optimal"
            with pytest.raises(RuntimeError, match="draining"):
                await batcher.submit(make_job(4))

        asyncio.run(scenario())

    def test_invalid_parameters(self):
        solver = RecordingSolver()
        with pytest.raises(ValueError):
            MicroBatcher(solver, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(solver, max_wait=-1.0)


class TestWorkerPool:
    def test_solves_batch_off_loop_and_caches(self):
        cache = SolveCache()
        pool = WorkerPool(cache=cache, shards=1, executor="serial")
        job = make_job(0, time_limit=30.0)

        async def scenario():
            results = await pool.solve_batch([job])
            return results

        results = asyncio.run(scenario())
        result = results[job.fingerprint]
        assert result.status != "error"
        assert job.fingerprint in cache
        pool.shutdown()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WorkerPool(shards=0)
        with pytest.raises(ValueError):
            WorkerPool(solver="magic")
