"""End-to-end gateway tests over real loopback HTTP.

Most tests inject a stub worker pool so the HTTP/cache/batching/admission
paths are exercised without MILP solves; one test runs a real solve through
the full stack.
"""

import asyncio
import json

import pytest

from repro.server.gateway import BackgroundGateway, GatewayConfig
from repro.server.loadgen import GatewayClient, closed_loop, demo_payloads, open_loop
from repro.service.cache import SolveCache
from repro.service.results import JobResult


class StubWorkerPool:
    """Answers every job with a canned optimal result after ``delay``."""

    def __init__(self, cache: SolveCache, delay: float = 0.0, fail: bool = False):
        self.cache = cache
        self.delay = delay
        self.fail = fail
        self.solved = 0

    async def solve_batch(self, jobs, budgets=None):
        if self.delay:
            await asyncio.sleep(self.delay)
        results = {}
        for job in jobs:
            self.solved += 1
            status = "error" if self.fail else "optimal"
            result = JobResult(
                fingerprint=job.fingerprint,
                job_name=job.name,
                status=status,
                feasible=not self.fail,
                objective=3.0,
                solve_time=0.01,
                wall_time=0.01,
                backend="stub",
                mode=job.mode,
                error="stub failure" if self.fail else None,
            )
            if not self.fail:
                self.cache.put(result)
            results[job.fingerprint] = result
        return results

    def shutdown(self, wait: bool = True):
        pass


def stub_gateway(config=None, delay: float = 0.0, fail: bool = False):
    cache = SolveCache()
    pool = StubWorkerPool(cache, delay=delay, fail=fail)
    config = config or GatewayConfig(port=0, batch_window=0.005)
    return BackgroundGateway(config=config, cache=cache, worker_pool=pool), pool


@pytest.fixture(scope="module")
def payloads():
    return demo_payloads(unique=3, time_limit=20.0)


class TestRoutes:
    def test_healthz_and_metrics(self, payloads):
        gw, _pool = stub_gateway()
        with gw:
            async def scenario():
                async with GatewayClient(gw.host, gw.port) as client:
                    status, health = await client.healthz()
                    assert status == 200 and health["status"] == "ok"
                    status, metrics = await client.metrics()
                    assert status == 200
                    assert "counters" in metrics and "tables" in metrics
                    status, _ = await client.request("GET", "/nope")
                    assert status == 404
                    status, _ = await client.request("GET", "/solve")
                    assert status == 405

            asyncio.run(scenario())

    def test_bad_request_bodies(self, payloads):
        gw, _pool = stub_gateway()
        with gw:
            async def scenario():
                async with GatewayClient(gw.host, gw.port) as client:
                    status, body = await client.request("POST", "/solve", {"nope": 1})
                    assert status == 400 and "error" in body
                    # raw non-JSON body
                    client._writer.write(
                        b"POST /solve HTTP/1.1\r\nHost: x\r\n"
                        b"Content-Length: 9\r\n\r\nnot-json!"
                    )
                    await client._writer.drain()
                    head = b""
                    while b"\r\n\r\n" not in head:
                        head += await client._reader.readline()
                    assert b"400" in head.split(b"\r\n", 1)[0]

            asyncio.run(scenario())

    def test_oversized_header_answers_413_not_dropped(self, payloads):
        gw, _pool = stub_gateway()
        with gw:
            async def scenario():
                reader, writer = await asyncio.open_connection(gw.host, gw.port)
                writer.write(
                    b"GET /healthz HTTP/1.1\r\nX-Big: " + b"a" * (70 * 1024) + b"\r\n\r\n"
                )
                await writer.drain()
                head = await reader.readline()
                writer.close()
                return head

            head = asyncio.run(scenario())
        assert b"413" in head

    def test_unexpected_dispatch_error_answers_500(self, payloads, monkeypatch):
        gw, _pool = stub_gateway()
        with gw:
            async def boom(request, client):
                raise KeyError("surprise")

            gw.gateway._dispatch = boom

            async def scenario():
                async with GatewayClient(gw.host, gw.port) as client:
                    return await client.healthz()

            status, body = asyncio.run(scenario())
        assert status == 500
        assert "KeyError" in body["error"]

    def test_miss_then_hit_flow(self, payloads):
        gw, pool = stub_gateway()
        with gw:
            async def scenario():
                async with GatewayClient(gw.host, gw.port) as client:
                    status, body = await client.solve(payloads[0])
                    assert status == 200
                    assert body["cached"] is False
                    assert body["result"]["status"] == "optimal"
                    status, body = await client.solve(payloads[0])
                    assert status == 200
                    assert body["cached"] is True

            asyncio.run(scenario())
        assert pool.solved == 1  # second request never reached the workers

    def test_solver_error_maps_to_500(self, payloads):
        gw, _pool = stub_gateway(fail=True)
        with gw:
            async def scenario():
                async with GatewayClient(gw.host, gw.port) as client:
                    status, body = await client.solve(payloads[0])
                    assert status == 500
                    assert body["result"]["error"] == "stub failure"

            asyncio.run(scenario())

    def test_error_results_are_not_cached(self, payloads):
        gw, pool = stub_gateway(fail=True)
        with gw:
            async def scenario():
                async with GatewayClient(gw.host, gw.port) as client:
                    await client.solve(payloads[0])
                    await client.solve(payloads[0])

            asyncio.run(scenario())
        assert pool.solved == 2  # both attempts executed, neither cached


class TestAdmission:
    def test_queue_full_sheds_with_429(self, payloads):
        config = GatewayConfig(port=0, max_queue_depth=1, batch_window=0.2, max_batch=100)
        gw, _pool = stub_gateway(config=config, delay=0.2)
        with gw:
            async def scenario():
                result = await closed_loop(
                    gw.host, gw.port, payloads, clients=6, requests_per_client=1
                )
                return result

            result = asyncio.run(scenario())
        assert result.shed >= 1
        assert result.ok >= 1
        assert gw.gateway.metrics.shed_queue_full == result.shed

    def test_rate_limit_sheds_with_429(self, payloads):
        config = GatewayConfig(port=0, rate_limit=1.0, rate_burst=2.0)
        gw, _pool = stub_gateway(config=config)
        with gw:
            async def scenario():
                async with GatewayClient(gw.host, gw.port, client_id="hog") as client:
                    statuses = []
                    for _ in range(5):
                        status, body = await client.solve(payloads[0])
                        statuses.append((status, body.get("reason")))
                    return statuses

            statuses = asyncio.run(scenario())
        shed = [reason for status, reason in statuses if status == 429]
        assert shed and all(reason == "rate_limited" for reason in shed)
        assert statuses[0][0] == 200  # the burst admitted the first request

    def test_spinning_client_ids_cannot_bypass_rate_limit(self, payloads):
        # by default the header is untrusted: buckets key on the peer address,
        # so a fresh X-Client-Id per request gets no fresh burst
        config = GatewayConfig(port=0, rate_limit=1.0, rate_burst=2.0)
        gw, _pool = stub_gateway(config=config)
        with gw:
            async def scenario():
                statuses = []
                for index in range(5):
                    async with GatewayClient(
                        gw.host, gw.port, client_id=f"spin-{index}"
                    ) as client:
                        status, _body = await client.solve(payloads[0])
                        statuses.append(status)
                return statuses

            statuses = asyncio.run(scenario())
        assert statuses.count(429) >= 2  # the spin did not mint new buckets

    def test_trusted_client_ids_get_per_client_buckets(self, payloads):
        config = GatewayConfig(
            port=0, rate_limit=1.0, rate_burst=1.0, trust_client_id=True
        )
        gw, _pool = stub_gateway(config=config)
        with gw:
            async def scenario():
                statuses = []
                for name in ("alice", "bob"):
                    async with GatewayClient(gw.host, gw.port, client_id=name) as client:
                        status, _body = await client.solve(payloads[0])
                        statuses.append(status)
                return statuses

            statuses = asyncio.run(scenario())
        assert statuses == [200, 200]  # each trusted id has its own burst

    def test_draining_gateway_answers_503(self, payloads):
        gw, _pool = stub_gateway()
        try:
            async def warm():
                async with GatewayClient(gw.host, gw.port) as client:
                    await client.solve(payloads[0])

            asyncio.run(warm())
            # flip the drain flag directly: the listener still answers
            gw.gateway._draining = True

            async def probe():
                async with GatewayClient(gw.host, gw.port) as client:
                    status, _body = await client.solve(payloads[0])
                    health_status, health = await client.healthz()
                    return status, health_status, health

            status, health_status, health = asyncio.run(probe())
            assert status == 503
            assert health_status == 200 and health["status"] == "draining"
        finally:
            gw.stop()


class TestWarmHitRate:
    def test_warm_repeat_run_hit_rate_end_to_end(self, payloads):
        """The acceptance check: warm-cache repeat traffic >= 0.9 hit rate
        measured end to end through the HTTP path."""
        gw, _pool = stub_gateway()
        with gw:
            async def scenario():
                cold = await closed_loop(
                    gw.host, gw.port, payloads, clients=3, requests_per_client=4
                )
                warm = await closed_loop(
                    gw.host, gw.port, payloads, clients=3, requests_per_client=4
                )
                return cold, warm

            cold, warm = asyncio.run(scenario())
        assert cold.ok == 12 and warm.ok == 12
        assert warm.hit_rate >= 0.9
        assert gw.gateway.metrics.hit_rate > 0.5

    def test_open_loop_against_warm_gateway(self, payloads):
        gw, _pool = stub_gateway()
        with gw:
            async def scenario():
                await closed_loop(gw.host, gw.port, payloads, clients=1,
                                  requests_per_client=len(payloads))
                return await open_loop(
                    gw.host, gw.port, payloads, rate=200.0, horizon=0.3, seed=3
                )

            result = asyncio.run(scenario())
        assert result.sent > 0
        assert result.errors == 0
        assert result.hit_rate >= 0.9


class TestRealSolveEndToEnd:
    def test_one_real_milp_solve_through_http(self):
        """Full stack, no stubs: HTTP -> protocol -> batcher -> BatchSolver."""
        payload = demo_payloads(unique=1, time_limit=30.0)[0]
        config = GatewayConfig(port=0, shards=1, batch_workers=1, executor="serial")
        with BackgroundGateway(config) as gw:
            async def scenario():
                async with GatewayClient(gw.host, gw.port) as client:
                    status, body = await client.solve(payload)
                    assert status == 200, body
                    assert body["result"]["feasible"] is True
                    assert body["cached"] is False
                    status, body = await client.solve(payload)
                    assert status == 200
                    assert body["cached"] is True
                    return json.loads(json.dumps(body))  # payload is JSON-clean

            body = asyncio.run(scenario())
        assert body["result"]["floorplan"] is not None
