"""Load-generator result math and workload builders (no server needed)."""

import pytest

from repro.server.loadgen import LoadResult, demo_payloads
from repro.server.protocol import job_from_dict


class TestLoadResult:
    def make(self):
        return LoadResult(
            latencies_s=[0.001, 0.002, 0.003, 0.004, 0.100],
            statuses=[200, 200, 200, 429, 500],
            cached=[True, True, False, False, False],
            wall_time=0.5,
        )

    def test_counts(self):
        result = self.make()
        assert result.sent == 5
        assert result.ok == 3
        assert result.shed == 1
        assert result.errors == 1
        assert result.hits == 2

    def test_rates(self):
        result = self.make()
        assert result.hit_rate == pytest.approx(2 / 3)
        assert result.shed_rate == pytest.approx(1 / 5)
        assert result.throughput == pytest.approx(10.0)

    def test_percentiles_nearest_rank(self):
        result = self.make()
        assert result.p50_s == pytest.approx(0.003)
        assert result.p99_s == pytest.approx(0.100)
        assert result.latency_quantile(0.0) == pytest.approx(0.001)

    def test_empty_result(self):
        empty = LoadResult([], [], [], 0.0)
        assert empty.sent == 0
        assert empty.hit_rate == 0.0
        assert empty.p50_s == 0.0

    def test_as_dict_and_summary(self):
        result = self.make()
        data = result.as_dict()
        assert data["sent"] == 5 and data["p99_ms"] == pytest.approx(100.0)
        assert "hit rate" in result.summary()


class TestDemoPayloads:
    def test_distinct_fingerprints(self):
        payloads = demo_payloads(unique=5)
        fingerprints = {job_from_dict(p).fingerprint for p in payloads}
        assert len(fingerprints) == 5

    def test_deterministic_across_calls(self):
        first = demo_payloads(unique=3)
        second = demo_payloads(unique=3)
        assert [job_from_dict(a).fingerprint for a in first] == [
            job_from_dict(b).fingerprint for b in second
        ]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            demo_payloads(unique=0)


class TestPackageSurface:
    def test_loadgen_names_resolve_lazily(self):
        # repro.server defers loadgen imports (PEP 562) so `python -m
        # repro.server.loadgen` does not double-execute the module
        import repro.server as server

        assert server.demo_payloads is demo_payloads
        assert callable(server.run_closed_loop)
        with pytest.raises(AttributeError):
            _ = server.no_such_name

    def test_top_level_exports(self):
        import repro

        for name in ("SolveGateway", "GatewayConfig", "BackgroundGateway"):
            assert name in repro.__all__ and hasattr(repro, name)
