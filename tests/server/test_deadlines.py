"""Deadline propagation end to end: header/body budgets, 504 shedding,
batch-window expiry, and degraded short-budget solves.

The stub-pool tests prove the *expiry* paths never reach the workers; the
final test runs a real heavy solve under a sub-second budget and checks the
answer comes back degraded instead of blocking for the full solver budget.
"""

import asyncio
import time

import pytest

from repro.server.batcher import DeadlineExpired, MicroBatcher
from repro.server.gateway import BackgroundGateway, GatewayConfig
from repro.server.loadgen import GatewayClient, demo_payloads

from tests.server.test_gateway_e2e import stub_gateway


@pytest.fixture(scope="module")
def payloads():
    return demo_payloads(unique=2, time_limit=20.0)


class TestGatewayDeadlines:
    def test_expired_header_deadline_sheds_before_solving(self, payloads):
        gw, pool = stub_gateway()
        with gw:
            async def scenario():
                async with GatewayClient(gw.host, gw.port) as client:
                    status, body = await client.solve(payloads[0], deadline=0.0)
                    return status, body, dict(client.last_headers)

            status, body, headers = asyncio.run(scenario())
        assert status == 504
        assert body["reason"] == "deadline_expired"
        assert body["where"] == "admission"
        assert "retry-after" in headers
        assert pool.solved == 0  # the solver was never invoked
        assert gw.gateway.metrics.deadline_expired == 1

    def test_expired_body_deadline_sheds_after_decode(self, payloads):
        gw, pool = stub_gateway()
        with gw:
            async def scenario():
                async with GatewayClient(gw.host, gw.port) as client:
                    payload = dict(payloads[0])
                    payload["deadline_s"] = -1.0
                    return await client.solve(payload)

            status, body = asyncio.run(scenario())
        assert status == 504
        assert body["where"] == "decode"
        assert pool.solved == 0

    def test_malformed_deadline_is_a_400(self, payloads):
        gw, _pool = stub_gateway()
        with gw:
            async def scenario():
                async with GatewayClient(gw.host, gw.port) as client:
                    return await client.request(
                        "POST", "/solve", payloads[0],
                        extra_headers={"X-Repro-Deadline": "soon"},
                    )

            status, body = asyncio.run(scenario())
        assert status == 400
        assert "deadline" in body["error"]

    def test_deadline_is_fingerprint_neutral(self, payloads):
        # a deadline-carrying request must hit the cache entry stored by a
        # deadline-free request for the same job
        gw, pool = stub_gateway()
        with gw:
            async def scenario():
                async with GatewayClient(gw.host, gw.port) as client:
                    status, first = await client.solve(payloads[0])
                    status2, second = await client.solve(payloads[0], deadline=30.0)
                    return first, second

            first, second = asyncio.run(scenario())
        assert first["cached"] is False and second["cached"] is True
        assert pool.solved == 1

    def test_generous_deadline_solves_normally(self, payloads):
        gw, pool = stub_gateway()
        with gw:
            async def scenario():
                async with GatewayClient(gw.host, gw.port) as client:
                    return await client.solve(payloads[0], deadline=30.0)

            status, body = asyncio.run(scenario())
        assert status == 200
        assert body["degraded"] is False
        assert pool.solved == 1


class TestBatcherDeadlines:
    def test_deadline_expiring_in_window_drops_the_entry(self):
        from tests.server.test_batcher_and_workers import RecordingSolver, make_job

        async def scenario():
            solver = RecordingSolver()
            batcher = MicroBatcher(solver, max_batch=100, max_wait=0.1)
            # expires long before the 100 ms window closes
            doomed = batcher.submit(make_job(1), deadline=time.monotonic() + 0.01)
            with pytest.raises(DeadlineExpired):
                await doomed
            assert solver.batches == []  # nothing reached the solver

        asyncio.run(scenario())

    def test_live_entries_survive_an_expired_sibling(self):
        from tests.server.test_batcher_and_workers import RecordingSolver, make_job

        async def scenario():
            solver = RecordingSolver()
            batcher = MicroBatcher(solver, max_batch=100, max_wait=0.1)
            doomed = asyncio.ensure_future(
                batcher.submit(make_job(1), deadline=time.monotonic() + 0.01)
            )
            alive = asyncio.ensure_future(
                batcher.submit(make_job(2), deadline=time.monotonic() + 30.0)
            )
            results = await asyncio.gather(doomed, alive, return_exceptions=True)
            assert isinstance(results[0], DeadlineExpired)
            assert results[1].status == "optimal"
            assert len(solver.batches) == 1 and len(solver.batches[0]) == 1
            assert batcher.queue_depth == 0  # accounting survived the drop

        asyncio.run(scenario())

    def test_budgets_thread_through_to_the_solver(self):
        from tests.server.test_batcher_and_workers import make_job

        captured = {}

        class BudgetSolver:
            async def __call__(self, jobs, budgets=None):
                captured.update(budgets or {})
                from tests.server.test_batcher_and_workers import canned_result

                return {job.fingerprint: canned_result(job) for job in jobs}

        async def scenario():
            batcher = MicroBatcher(BudgetSolver(), max_batch=1, max_wait=0.01)
            job = make_job(5)
            await batcher.submit(job, deadline=time.monotonic() + 7.0)
            assert job.fingerprint in captured
            assert 0.0 < captured[job.fingerprint] <= 7.0

        asyncio.run(scenario())


class TestShortBudgetDegrades:
    def test_short_deadline_miss_returns_degraded_not_blocking(self):
        """Acceptance: a heavy miss under a ~0.4 s budget answers within the
        budget's order of magnitude, flagged degraded, instead of holding the
        request for the full 30 s solver time limit."""
        payload = demo_payloads(unique=1, time_limit=30.0, heavy=True)[0]
        config = GatewayConfig(port=0, shards=1, batch_workers=1, executor="serial")
        with BackgroundGateway(config) as gw:
            async def scenario():
                async with GatewayClient(gw.host, gw.port) as client:
                    started = time.perf_counter()
                    status, body = await client.solve(payload, deadline=0.4)
                    return status, body, time.perf_counter() - started

            status, body, elapsed = asyncio.run(scenario())
        assert status == 200
        assert body["degraded"] is True
        assert body["result"]["degraded"] is True
        assert elapsed < 10.0  # nowhere near the 30 s solver budget
        assert gw.gateway.metrics.degraded == 1

    def test_degraded_results_are_not_cached(self):
        payload = demo_payloads(unique=1, time_limit=30.0, heavy=True)[0]
        config = GatewayConfig(port=0, shards=1, batch_workers=1, executor="serial")
        with BackgroundGateway(config) as gw:
            async def scenario():
                async with GatewayClient(gw.host, gw.port) as client:
                    _status, first = await client.solve(payload, deadline=0.4)
                    _status, second = await client.solve(payload, deadline=0.4)
                    return first, second

            first, second = asyncio.run(scenario())
        if first["degraded"]:
            # the clamped answer must not have been stored for the repeat
            assert second["cached"] is False
