"""Deterministic admission-control and metrics-machinery tests."""

import pytest

from repro.analysis.report import server_counter_rows, sim_latency_rows
from repro.server.admission import AdmissionController, TokenBucket
from repro.server.metrics import GatewayMetrics, LatencyHistogram


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3.0, now=0.0)
        assert all(bucket.try_acquire(0.0) for _ in range(3))  # burst drains
        assert not bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.4)  # 0.8 tokens: still short
        assert bucket.try_acquire(0.5)  # 1.0 token refilled
        assert not bucket.try_acquire(0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        assert bucket.try_acquire(0.0)
        # a long idle stretch refills to burst, not beyond
        assert bucket.try_acquire(100.0)
        assert bucket.try_acquire(100.0)
        assert not bucket.try_acquire(100.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmissionController:
    def test_rate_limit_is_per_client(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate_limit=1.0, rate_burst=1.0, clock=clock, max_queue_depth=None
        )
        assert controller.check_rate("alice").admitted
        assert not controller.check_rate("alice").admitted  # alice's bucket is dry
        assert controller.check_rate("bob").admitted  # bob has his own bucket
        clock.advance(1.0)
        assert controller.check_rate("alice").admitted  # refilled

    def test_rate_limit_disabled_by_default(self):
        controller = AdmissionController()
        assert all(controller.check_rate("c").admitted for _ in range(1000))

    def test_queue_bound(self):
        controller = AdmissionController(max_queue_depth=2)
        assert controller.check_queue(0).admitted
        assert controller.check_queue(1).admitted
        decision = controller.check_queue(2)
        assert not decision.admitted and decision.reason == "queue_full"

    def test_unbounded_queue(self):
        controller = AdmissionController(max_queue_depth=None)
        assert controller.check_queue(10**9).admitted

    def test_client_table_is_bounded(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate_limit=1.0, clock=clock, max_clients=8, max_queue_depth=None
        )
        for index in range(100):
            clock.advance(0.01)  # distinct staleness per bucket
            controller.check_rate(f"client-{index}")
        assert controller.tracked_clients <= 8


class TestLatencyHistogram:
    def test_quantiles_never_under_report(self):
        histogram = LatencyHistogram()
        samples = [0.001, 0.002, 0.003, 0.010, 0.100]
        for sample in samples:
            histogram.observe(sample)
        assert histogram.count == 5
        assert histogram.quantile(0.5) >= 0.003
        assert histogram.quantile(1.0) == pytest.approx(0.1)
        assert histogram.min == pytest.approx(0.001)
        assert histogram.mean == pytest.approx(sum(samples) / 5)

    def test_quantile_within_bucket_resolution(self):
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.observe(0.02)
        # every sample is 20 ms; one log-bucket of slack is ±50%
        assert 0.02 <= histogram.quantile(0.99) <= 0.03

    def test_identical_samples_report_exactly(self):
        # clamping to the observed [min, max] collapses interpolation to the
        # true value when every sample is identical — the old boundary
        # behaviour reported the bucket's upper edge (a full bucket high)
        histogram = LatencyHistogram()
        for _ in range(50):
            histogram.observe(0.02)
        for fraction in (0.01, 0.5, 0.99, 1.0):
            assert histogram.quantile(fraction) == pytest.approx(0.02)

    def test_interpolation_inside_a_wide_bucket(self):
        histogram = LatencyHistogram(bounds=[10.0])
        for sample in range(1, 10):  # 1..9, all in the (0, 10] bucket
            histogram.observe(float(sample))
        # rank 5 of 9 interpolates to 10 * 5/9 ≈ 5.6 — near the true median,
        # not the bucket's upper edge
        median = histogram.quantile(0.5)
        assert 4.0 <= median <= 7.0
        # and never outside the observed extremes
        assert histogram.quantile(0.0) >= 1.0
        assert histogram.quantile(1.0) <= 9.0

    def test_overflow_bucket_reports_observed_max(self):
        histogram = LatencyHistogram(bounds=[1.0])
        histogram.observe(0.5)
        histogram.observe(42.0)  # overflow bucket
        assert histogram.quantile(1.0) == pytest.approx(42.0)

    def test_empty_summary(self):
        assert LatencyHistogram().summary() == {"count": 0}

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)


class TestGatewayMetrics:
    def test_lifecycle_counters(self):
        metrics = GatewayMetrics()
        metrics.received += 3
        metrics.observe_hit(0.001)
        metrics.cache_misses += 2
        metrics.observe_batch(size=2, unique=1)
        metrics.observe_solved(0.5)
        metrics.observe_solved(0.6, error=True)
        assert metrics.hit_rate == pytest.approx(1 / 3)
        assert metrics.mean_batch_size == 2.0
        assert metrics.deduped_jobs == 1
        counters = metrics.counters(queue_depth=4)
        assert counters["queue_depth"] == 4
        assert counters["ok"] == 2 and counters["solve_errors"] == 1

    def test_shed_rate(self):
        metrics = GatewayMetrics()
        metrics.received = 10
        metrics.shed_rate_limited = 2
        metrics.shed_queue_full = 3
        assert metrics.shed == 5
        assert metrics.shed_rate == pytest.approx(0.5)

    def test_snapshot_feeds_analysis_tables(self):
        metrics = GatewayMetrics()
        metrics.received = 1
        metrics.observe_hit(0.002)
        snapshot = metrics.snapshot(queue_depth=0, cache_stats={"hits": 1})
        counter_rows = server_counter_rows(snapshot["counters"])
        assert ["received", 1] in counter_rows
        latency_rows = sim_latency_rows(snapshot["latency"])
        by_metric = {row[0]: row for row in latency_rows}
        assert by_metric["request"][1] == 1  # count column
        assert by_metric["solve_miss"][2] == "-"  # no miss samples yet
