"""End-to-end integration tests: floorplan -> verify -> bitstreams -> relocate."""

from repro.floorplan import FloorplanSolver, verify_floorplan
from repro.floorplan.metrics import evaluate_floorplan
from repro.relocation import RelocationSpec
from repro.relocation.metric import satisfied_areas_by_region
from repro.runtime import ReconfigurationManager


class TestRelocationFlow:
    """The full story of the paper on a small instance."""

    def test_constraint_mode_end_to_end(self, tiny_relocation_solution):
        report, spec = tiny_relocation_solution
        floorplan = report.floorplan

        # 1. the floorplanner reserved every requested area
        assert floorplan.num_free_compatible_areas == spec.total_copies
        assert verify_floorplan(floorplan).is_feasible

        # 2. a run-time manager can actually relocate into the reserved areas
        manager = ReconfigurationManager(floorplan)
        for region in spec.regions:
            manager.reconfigure(region, "mode1")
            relocated = manager.relocate(region)
            assert manager.memory.verify(relocated)

        # 3. the trace shows one relocation per requested region
        assert manager.trace.summary()["relocate"] == len(spec.regions)

    def test_constraint_vs_metric_agreement(self, tiny_problem, fast_options):
        """When the hard problem is feasible, soft mode finds the same areas."""
        request = {"beta": 1, "gamma": 1}
        hard = FloorplanSolver(
            tiny_problem, relocation=RelocationSpec.as_constraint(request), options=fast_options
        ).solve()
        soft = FloorplanSolver(
            tiny_problem, relocation=RelocationSpec.as_metric(request), options=fast_options
        ).solve()
        assert hard.solution.status.has_solution and soft.solution.status.has_solution
        assert hard.floorplan.num_free_compatible_areas == 2
        assert soft.floorplan.num_free_compatible_areas == 2
        assert satisfied_areas_by_region(soft.floorplan) == {"beta": 1, "gamma": 1}

    def test_relocation_cost_visible_in_objective(self, tiny_solution, tiny_relocation_solution):
        """Reserving areas never *improves* the base cost (paper: small impact)."""
        base = evaluate_floorplan(tiny_solution.floorplan)
        with_areas = evaluate_floorplan(tiny_relocation_solution[0].floorplan)
        assert with_areas.wasted_frames >= 0
        assert base.wasted_frames >= 0
        # the relocation-aware solution still covers all requirements
        assert with_areas.covered_frames >= with_areas.required_frames

    def test_ho_with_relocation_spec(self, tiny_problem, fast_options):
        spec = RelocationSpec.as_constraint({"beta": 1})
        report = FloorplanSolver(
            tiny_problem, relocation=spec, mode="HO", options=fast_options
        ).solve()
        assert report.solution.status.has_solution
        assert report.floorplan.num_free_compatible_areas == 1
        assert report.verification.is_feasible

    def test_milp_agrees_with_independent_checker_on_tiny_sweep(self, fast_options):
        """Solve a handful of tiny synthetic instances and cross-verify each."""
        from repro.workloads import synthetic_problem
        from repro.workloads.synthetic import SyntheticWorkloadConfig
        from repro.device.catalog import synthetic_device

        for seed in range(3):
            device = synthetic_device(10, 4, bram_every=4, dsp_every=7, name=f"sweep-{seed}")
            problem = synthetic_problem(
                device=device,
                config=SyntheticWorkloadConfig(num_regions=3, utilization=0.35, seed=seed),
            )
            report = FloorplanSolver(problem, options=fast_options).solve()
            assert report.solution.status.has_solution, f"seed {seed} unsolved"
            assert report.verification.is_feasible, f"seed {seed} failed verification"
