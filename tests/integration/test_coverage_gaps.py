"""Additional unit tests for smaller modules (utils, HO seeding, edge cases)."""

import math

import pytest

from repro.floorplan import Rect
from repro.floorplan.ho import HOSeedError, HOSeeder
from repro.milp import MILPSolution, Model, SolveStatus, SolverOptions, solve
from repro.milp.branch_bound import solve_with_branch_bound
from repro.utils import Timer, make_rng


class TestUtils:
    def test_timer_measures_elapsed(self):
        with Timer() as timer:
            sum(range(1000))
            assert timer.lap() >= 0.0
        assert timer.elapsed >= 0.0

    def test_timer_outside_context(self):
        timer = Timer()
        assert timer.lap() == 0.0

    def test_make_rng_deterministic_and_passthrough(self):
        a = make_rng(42)
        b = make_rng(42)
        assert a.integers(1000) == b.integers(1000)
        assert make_rng(a) is a


class TestHOSeeder:
    def test_seed_regions_produces_feasible_floorplan(self, tiny_problem):
        seeder = HOSeeder(tiny_problem)
        floorplan = seeder.seed_regions()
        assert floorplan.is_complete

    def test_unknown_heuristic_rejected(self, tiny_problem):
        with pytest.raises(ValueError):
            HOSeeder(tiny_problem).seed_regions("magic")

    def test_add_free_areas_requires_placed_region(self, tiny_problem):
        from repro.floorplan.placement import Floorplan
        from repro.relocation import RelocationSpec

        seeder = HOSeeder(tiny_problem)
        empty = Floorplan(problem=tiny_problem)
        with pytest.raises(HOSeedError):
            seeder.add_free_areas(empty, RelocationSpec.as_constraint({"beta": 1}))

    def test_impossible_hard_request_raises(self, tiny_problem):
        from repro.relocation import RelocationSpec

        seeder = HOSeeder(tiny_problem)
        with pytest.raises(HOSeedError):
            seeder.build_seed(spec=RelocationSpec.as_constraint({"alpha": 40}))

    def test_seed_with_provided_initial_floorplan(self, tiny_solution):
        seeder = HOSeeder(tiny_solution.floorplan.problem)
        seed = seeder.build_seed(initial=tiny_solution.floorplan)
        assert set(seed.sequence_pair.names) == set(tiny_solution.floorplan.placements)


class TestBranchBoundEdgeCases:
    def test_time_limit_zero_reports_no_incumbent(self):
        model = Model()
        x = model.add_integer("x", ub=5)
        model.add(x >= 1)
        model.minimize(x)
        result = solve_with_branch_bound(model, time_limit=0.0)
        assert result.status in (SolveStatus.TIME_LIMIT, SolveStatus.FEASIBLE, SolveStatus.OPTIMAL)

    def test_max_nodes_cap(self):
        model = Model()
        xs = [model.add_binary(f"x{i}") for i in range(6)]
        model.add(sum(xs[1:], xs[0]) >= 3)
        model.minimize(sum(xs[1:], xs[0]))
        result = solve_with_branch_bound(model, max_nodes=1)
        assert result.node_count <= 1

    def test_pure_lp_solved_at_root(self):
        model = Model()
        x = model.add_continuous("x", lb=0, ub=4)
        model.minimize(-x)
        result = solve_with_branch_bound(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(-4.0)


class TestSolutionHelpers:
    def test_values_by_name(self):
        model = Model()
        x = model.add_integer("x", ub=2)
        model.maximize(x)
        result = solve(model, SolverOptions())
        assert result.values_by_name() == {"x": 2.0}

    def test_nan_objective_gap(self):
        empty = MILPSolution(status=SolveStatus.ERROR)
        assert math.isinf(empty.gap)


class TestRenderOverlay:
    def test_overlay_and_floorplans_without_free_areas(self, tiny_solution):
        from repro.analysis.render import render_floorplan, render_rect_overlay

        device = tiny_solution.floorplan.device
        text = render_rect_overlay(device, {"X": Rect(0, 0, 2, 2)})
        assert "X" in text
        plain = render_floorplan(tiny_solution.floorplan, show_free_areas=False)
        assert "free-compatible areas:" not in plain


class TestSolverReportSummary:
    def test_summary_mentions_status_and_metrics(self, tiny_solution):
        text = tiny_solution.summary()
        assert "status:" in text and "wasted frames" in text and "verification" in text

    def test_feasible_flag(self, tiny_solution):
        assert tiny_solution.feasible
