"""Property/fuzz tests of the fast MILP pipeline.

Three equivalences are enforced:

* presolved and raw solves agree on status and objective across randomized
  MILPs, on both backends;
* the same holds for floorplanning models produced by the synthetic workload
  builders;
* pruned and unpruned ``build_floorplan_milp`` models extract identical
  optimal floorplans (the feasible-placement pruning is exact, and HO-mode
  fixed relations remove the symmetry that would otherwise let the solver
  pick a different tie-optimal layout).
"""

import numpy as np
import pytest

from repro.bench import scenarios
from repro.floorplan import FloorplanSolver, ObjectiveWeights
from repro.floorplan.ho import HOSeeder
from repro.floorplan.milp_builder import build_floorplan_milp
from repro.floorplan.problem import Connection, FloorplanProblem, IOPin
from repro.milp import Model, SolveStatus, SolverOptions, solve
from repro.workloads.synthetic import SyntheticWorkloadConfig, synthetic_problem

OBJ_TOL = 1e-6


def _anchored(problem: FloorplanProblem) -> FloorplanProblem:
    """Tie one region to a fixed I/O pin so translation ties disappear.

    Without an absolute anchor an optimal layout can slide across the fabric
    at equal cost, and the pruned/unpruned solves may pick different (equally
    optimal) translates; the pin makes the optimum unique so "identical
    floorplans" is well-defined.
    """
    anchor = IOPin("anchor", col=0, row=0)
    connections = list(problem.connections) + [
        Connection(region.name, "anchor", weight=2.0) for region in problem.regions
    ]
    return FloorplanProblem(
        problem.device,
        list(problem.regions),
        connections,
        pins=[anchor],
        name=f"{problem.name}-anchored",
    )


def _random_model(seed: int) -> Model:
    """A seeded random MILP with singleton/duplicate/fixed structure."""
    rng = np.random.default_rng(seed)
    model = Model(f"fuzz-{seed}")
    nvars = int(rng.integers(4, 10))
    variables = []
    for i in range(nvars):
        kind = rng.random()
        if kind < 0.4:
            variables.append(model.add_binary(f"b{i}"))
        elif kind < 0.75:
            lb = int(rng.integers(-3, 1))
            variables.append(model.add_integer(f"i{i}", lb=lb, ub=lb + int(rng.integers(2, 8))))
        else:
            lb = float(rng.uniform(-2, 0))
            variables.append(model.add_continuous(f"c{i}", lb=lb, ub=lb + float(rng.uniform(1, 6))))
    # occasionally fix a variable outright
    if rng.random() < 0.5:
        fixed = model.add_continuous(f"f{nvars}", lb=1.25, ub=1.25)
        variables.append(fixed)

    ncons = int(rng.integers(3, 9))
    for c in range(ncons):
        chosen = rng.choice(len(variables), size=int(rng.integers(1, 4)), replace=False)
        coefs = rng.integers(-4, 5, size=chosen.size)
        expr = sum(
            int(k) * variables[int(j)] for j, k in zip(chosen, coefs) if int(k) != 0
        )
        if isinstance(expr, int):  # all coefficients were zero
            continue
        rhs = float(rng.integers(-6, 10))
        roll = rng.random()
        if roll < 0.45:
            constraint = expr <= rhs
        elif roll < 0.9:
            constraint = expr >= -rhs
        else:
            constraint = expr == rhs
        model.add(constraint, name=f"r{c}")
        if rng.random() < 0.25:  # inject a duplicate row
            model.add(constraint, name=f"r{c}_dup")

    objective = sum(
        float(rng.integers(-5, 6)) * v for v in variables
    )
    if rng.random() < 0.5:
        model.minimize(objective)
    else:
        model.maximize(objective)
    return model


class TestPresolvedVsRawSolves:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_models_agree_on_highs(self, seed):
        model = _random_model(seed)
        raw = solve(model, SolverOptions(presolve=False))
        reduced = solve(model, SolverOptions(presolve=True))
        assert reduced.status is raw.status
        if raw.status.has_solution:
            assert reduced.objective == pytest.approx(raw.objective, abs=OBJ_TOL)
            assert model.check_assignment(reduced.values) == []

    @pytest.mark.parametrize("seed", range(0, 20, 4))
    def test_random_models_agree_on_branch_bound(self, seed):
        model = _random_model(seed)
        options = SolverOptions(backend="branch-bound", time_limit=30)
        raw = solve(model, options.replace(presolve=False, warm_start=False))
        reduced = solve(model, options)
        assert reduced.status.has_solution == raw.status.has_solution
        if raw.status.has_solution:
            assert reduced.objective == pytest.approx(raw.objective, abs=OBJ_TOL)
            assert model.check_assignment(reduced.values) == []

    @pytest.mark.parametrize("seed", (0, 1))
    def test_synthetic_workload_builders_agree(self, seed):
        config = SyntheticWorkloadConfig(num_regions=3, utilization=0.4, seed=seed)
        problem = synthetic_problem(config=config, name=f"fuzz-workload-{seed}")
        options = SolverOptions(time_limit=scenarios.bench_time_limit(120.0))
        results = {}
        for presolve_on in (False, True):
            report = FloorplanSolver(
                problem, mode="HO", options=options.replace(presolve=presolve_on)
            ).solve(weights=ObjectiveWeights(wirelength=0.0, wasted_frames=1.0))
            results[presolve_on] = report.solution
        assert results[True].status is results[False].status
        assert results[True].objective == pytest.approx(
            results[False].objective, abs=OBJ_TOL
        )


class TestPrunedVsUnprunedBuilds:
    def _solve_both(self, problem, weights):
        """Build pruned/unpruned HO models and solve them identically."""
        fixed = HOSeeder(problem).build_seed().fixed_relations()
        extracted = {}
        for prune in (False, True):
            milp = build_floorplan_milp(problem, fixed_relations=fixed, prune=prune)
            milp.set_objective(weights)
            solution = solve(
                milp.model,
                SolverOptions(time_limit=scenarios.bench_time_limit(120.0)),
            )
            assert solution.status is SolveStatus.OPTIMAL
            extracted[prune] = (solution, milp.extract(solution))
        return extracted

    @pytest.mark.parametrize(
        "problem_factory",
        [
            lambda: _anchored(scenarios.small_problem("prune-eq-small")),
            lambda: _anchored(scenarios.pruning_problem(32, name="prune-eq-pinned")),
        ],
        ids=["small", "resource-pinned"],
    )
    def test_identical_optimal_floorplans(self, problem_factory):
        problem = problem_factory()
        weights = ObjectiveWeights(wirelength=1.0, wasted_frames=1.0)
        extracted = self._solve_both(problem, weights)
        raw_solution, raw_plan = extracted[False]
        pruned_solution, pruned_plan = extracted[True]
        assert pruned_solution.objective == pytest.approx(
            raw_solution.objective, abs=OBJ_TOL
        )
        raw_rects = {name: p.rect for name, p in raw_plan.placements.items()}
        pruned_rects = {name: p.rect for name, p in pruned_plan.placements.items()}
        assert pruned_rects == raw_rects

    def test_pruned_model_is_smaller_on_pinned_regions(self):
        problem = scenarios.pruning_problem(32, name="prune-shrink")
        full = build_floorplan_milp(problem, prune=False).model.stats()
        pruned_milp = build_floorplan_milp(problem, prune=True)
        pruned = pruned_milp.model.stats()
        assert pruned.num_constraints < full.num_constraints
        assert pruned.num_nonzeros < full.num_nonzeros
        assert any(
            stats["cols_pruned"] > 0 for stats in pruned_milp.prune_stats.values()
        )
