"""Property tests: the optimized hot paths are behaviour-identical.

Two families of checks:

* the rewritten :mod:`repro.floorplan.sequence_pair` (memoized match
  positions, networkx-free extraction, LIS packing) against a literal
  re-implementation of the pre-optimization algorithms (naive per-call
  position rebuilds; ``networkx``-based graph extraction);
* the incremental annealing evaluator against the full-re-evaluation
  reference: same seeds must produce *identical* placements, because the
  delta costs are exact.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.baselines.annealing import (
    AnnealingOptions,
    _CostEvaluator,
    _IncrementalCostEvaluator,
    annealing_floorplan,
)
from repro.bench.scenarios import (
    random_placement,
    random_rect_state,
    scaling_problem,
    small_problem,
)
from repro.floorplan.sequence_pair import (
    _RELATION_EDGES,
    SequencePair,
    _horizontal_relation,
    _vertical_relation,
)

SEEDS = range(8)


# ----------------------------------------------------------------------
# reference implementation of the pre-optimization extraction (networkx)
# ----------------------------------------------------------------------
def _reference_from_rects(rects):
    names = sorted(rects)
    forced, flexible = [], []
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            ra, rb = rects[a], rects[b]
            horizontal = _horizontal_relation(ra, rb)
            vertical = _vertical_relation(ra, rb)
            if horizontal is None and vertical is None:
                raise ValueError("overlap")
            if horizontal is not None and vertical is not None:
                flexible.append((a, b, (horizontal, vertical)))
            else:
                forced.append((a, b, horizontal or vertical))

    graph_plus, graph_minus = nx.DiGraph(), nx.DiGraph()
    graph_plus.add_nodes_from(names)
    graph_minus.add_nodes_from(names)

    def add(a, b, relation):
        forward_plus, forward_minus = _RELATION_EDGES[relation]
        graph_plus.add_edge(a, b) if forward_plus else graph_plus.add_edge(b, a)
        graph_minus.add_edge(a, b) if forward_minus else graph_minus.add_edge(b, a)

    for a, b, relation in forced:
        add(a, b, relation)
    assert nx.is_directed_acyclic_graph(graph_plus)
    assert nx.is_directed_acyclic_graph(graph_minus)
    for a, b, candidates in flexible:
        for relation in candidates:
            forward_plus, forward_minus = _RELATION_EDGES[relation]
            plus_src, plus_dst = (a, b) if forward_plus else (b, a)
            minus_src, minus_dst = (a, b) if forward_minus else (b, a)
            if not nx.has_path(graph_plus, plus_dst, plus_src) and not nx.has_path(
                graph_minus, minus_dst, minus_src
            ):
                add(a, b, relation)
                break
        else:  # pragma: no cover - valid placements always resolve
            raise AssertionError("unresolvable diagonal pair")
    return SequencePair(
        gamma_plus=tuple(nx.lexicographical_topological_sort(graph_plus)),
        gamma_minus=tuple(nx.lexicographical_topological_sort(graph_minus)),
    )


def _naive_relation(pair, a, b):
    """The pre-optimization relation(): rebuilds both position maps."""
    pos_plus = {name: i for i, name in enumerate(pair.gamma_plus)}
    pos_minus = {name: i for i, name in enumerate(pair.gamma_minus)}
    before_plus = pos_plus[a] < pos_plus[b]
    before_minus = pos_minus[a] < pos_minus[b]
    if before_plus and before_minus:
        return "left"
    if not before_plus and not before_minus:
        return "right"
    if not before_plus and before_minus:
        return "below"
    return "above"


# ----------------------------------------------------------------------
# sequence pair equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_from_rects_matches_networkx_reference(seed):
    rects = random_placement(35, seed=seed)
    assert SequencePair.from_rects(rects) == _reference_from_rects(rects)


@pytest.mark.parametrize("seed", SEEDS)
def test_relations_match_naive_rebuild(seed):
    rects = random_placement(25, seed=100 + seed)
    pair = SequencePair.from_rects(rects)
    relations = pair.relations()
    names = pair.names
    assert len(relations) == len(names) * (len(names) - 1)
    for (a, b), relation in relations.items():
        assert relation == _naive_relation(pair, a, b)
        assert relation == pair.relation(a, b)


@pytest.mark.parametrize("seed", SEEDS)
def test_extracted_pair_is_consistent_with_its_placement(seed):
    rects = random_placement(30, seed=200 + seed)
    pair = SequencePair.from_rects(rects)
    assert pair.is_consistent_with(rects)
    # breaking one geometric relation must be detected
    name = pair.names[0]
    moved = dict(rects)
    other = pair.names[-1]
    moved[name] = moved[other]  # force an in-place collision/violation
    consistent = pair.is_consistent_with(moved)
    reference = all(
        _check_relation(moved[a], moved[b], relation)
        for (a, b), relation in pair.relations().items()
    )
    assert consistent == reference


def _check_relation(ra, rb, relation):
    if relation == "left":
        return ra.col_end < rb.col
    if relation == "below":
        return ra.row_end < rb.row
    return True  # mirrored pairs carry the binding check


@pytest.mark.parametrize("seed", SEEDS)
def test_packing_realizes_every_relation(seed):
    rects = random_placement(30, seed=300 + seed)
    pair = SequencePair.from_rects(rects)
    widths = {name: rect.width for name, rect in rects.items()}
    heights = {name: rect.height for name, rect in rects.items()}
    packed = pair.packed_rects(widths, heights)
    assert pair.is_consistent_with(packed)
    # packing is also no larger than the placement it came from
    span_w = max(r.col_end for r in packed.values()) + 1
    span_h = max(r.row_end for r in packed.values()) + 1
    orig_w = max(r.col_end for r in rects.values()) + 1
    orig_h = max(r.row_end for r in rects.values()) + 1
    assert span_w <= orig_w
    assert span_h <= orig_h


def test_packing_of_known_pair():
    pair = SequencePair(("a", "b", "c"), ("a", "b", "c"))  # a left of b left of c
    packed = pair.pack({"a": 2, "b": 3, "c": 1}, {"a": 1, "b": 1, "c": 1})
    assert packed == {"a": (0, 0), "b": (2, 0), "c": (5, 0)}
    stacked = SequencePair(("c", "b", "a"), ("a", "b", "c"))  # a below b below c
    packed = stacked.pack({"a": 1, "b": 1, "c": 1}, {"a": 2, "b": 3, "c": 1})
    assert packed == {"a": (0, 0), "b": (0, 2), "c": (0, 5)}


# ----------------------------------------------------------------------
# annealing equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
def test_incremental_annealer_is_placement_identical(seed):
    problem = small_problem(f"anneal-eq-{seed}")
    reference = annealing_floorplan(
        problem, AnnealingOptions(iterations=1500, seed=seed, incremental=False)
    )
    optimized = annealing_floorplan(
        problem, AnnealingOptions(iterations=1500, seed=seed, incremental=True)
    )
    assert reference is not None and optimized is not None
    assert {n: p.rect for n, p in reference.placements.items()} == {
        n: p.rect for n, p in optimized.placements.items()
    }
    assert reference.metadata["final_cost"] == optimized.metadata["final_cost"]
    assert reference.solver_status == optimized.solver_status


def test_incremental_annealer_identical_on_wider_device():
    problem = scaling_problem(24, name="anneal-eq-wide")
    for seed in range(2):
        reference = annealing_floorplan(
            problem, AnnealingOptions(iterations=1000, seed=seed, incremental=False)
        )
        optimized = annealing_floorplan(
            problem, AnnealingOptions(iterations=1000, seed=seed, incremental=True)
        )
        assert {n: p.rect for n, p in reference.placements.items()} == {
            n: p.rect for n, p in optimized.placements.items()
        }


@pytest.mark.parametrize("seed", range(4))
def test_incremental_evaluator_costs_match_reference_under_fuzz(seed):
    """propose/commit/reject fuzzing: every cost equals a full re-evaluation."""
    import numpy as np

    problem = small_problem(f"fuzz-{seed}")
    options = AnnealingOptions(seed=seed)
    reference = _CostEvaluator(problem, options)
    incremental = _IncrementalCostEvaluator(problem, options)
    state = random_rect_state(problem, seed=seed)
    assert incremental.reset(state) == reference.cost(state)
    assert incremental.feasible(state) == reference.is_feasible(state)

    rng = np.random.default_rng(1000 + seed)
    names = list(state)
    device = problem.device
    for _ in range(300):
        name = names[int(rng.integers(len(names)))]
        width = int(rng.integers(1, device.width + 1))
        height = int(rng.integers(1, device.height + 1))
        col = int(rng.integers(0, device.width - width + 1))
        row = int(rng.integers(0, device.height - height + 1))
        from repro.floorplan.geometry import Rect

        candidate = Rect(col, row, width, height)
        old_rect = state[name]
        state[name] = candidate
        cost = incremental.propose(name, candidate, state)
        assert cost == reference.cost(state)
        if rng.random() < 0.5:
            incremental.commit()
            assert incremental.feasible(state) == reference.is_feasible(state)
        else:
            incremental.reject()
            state[name] = old_rect
