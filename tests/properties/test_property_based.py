"""Property-based tests (hypothesis) on the core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bitstream import crc32, generate_bitstream, relocate_bitstream
from repro.device import ResourceVector, columnar_partition, synthetic_device
from repro.floorplan import Rect, SequencePair
from repro.milp import Model, quicksum
from repro.relocation.compatibility import (
    areas_compatible,
    compatible_column_offsets,
    enumerate_free_compatible_areas,
)

# keep hypothesis examples modest: every example builds devices / models
COMMON_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# LinExpr algebra
# ----------------------------------------------------------------------
@st.composite
def expr_and_values(draw):
    model = Model("prop")
    variables = [model.add_continuous(f"v{i}", lb=None, ub=None) for i in range(4)]
    coeffs_a = [draw(st.integers(-5, 5)) for _ in variables]
    coeffs_b = [draw(st.integers(-5, 5)) for _ in variables]
    const_a = draw(st.integers(-10, 10))
    const_b = draw(st.integers(-10, 10))
    values = {v: float(draw(st.integers(-7, 7))) for v in variables}
    expr_a = quicksum(c * v for c, v in zip(coeffs_a, variables)) + const_a
    expr_b = quicksum(c * v for c, v in zip(coeffs_b, variables)) + const_b
    return expr_a, expr_b, values


@given(data=expr_and_values(), scale=st.integers(-4, 4))
@settings(**COMMON_SETTINGS)
def test_linexpr_algebra_is_consistent(data, scale):
    expr_a, expr_b, values = data
    a = expr_a.evaluate(values)
    b = expr_b.evaluate(values)
    assert (expr_a + expr_b).evaluate(values) == a + b
    assert (expr_a - expr_b).evaluate(values) == a - b
    assert (expr_a * scale).evaluate(values) == a * scale
    assert (-expr_a).evaluate(values) == -a


# ----------------------------------------------------------------------
# ResourceVector algebra
# ----------------------------------------------------------------------
resource_vectors = st.builds(
    ResourceVector,
    st.fixed_dictionaries(
        {},
        optional={
            "CLB": st.integers(0, 20),
            "BRAM": st.integers(0, 6),
            "DSP": st.integers(0, 6),
        },
    ),
)


@given(a=resource_vectors, b=resource_vectors)
@settings(**COMMON_SETTINGS)
def test_resource_vector_cover_properties(a, b):
    total = a + b
    assert total.covers(a) and total.covers(b)
    assert total.total == a.total + b.total
    assert total.deficit(a).is_zero()
    # covering implies per-type dominance of the deficit
    if a.covers(b):
        assert a.deficit(b).is_zero()


# ----------------------------------------------------------------------
# Columnar partitioning invariants
# ----------------------------------------------------------------------
@given(
    width=st.integers(3, 24),
    height=st.integers(2, 10),
    bram_every=st.integers(2, 8),
    dsp_every=st.integers(3, 9),
)
@settings(**COMMON_SETTINGS)
def test_columnar_partition_invariants(width, height, bram_every, dsp_every):
    device = synthetic_device(width, height, bram_every=bram_every, dsp_every=dsp_every)
    partition = columnar_partition(device)
    partition.check_properties()  # Properties .3 and .4
    # portions tile the device exactly
    assert sum(p.num_tiles for p in partition.portions) == width * height
    # every column's type matches its portion's type
    for col in range(width):
        assert partition.portion_of_column(col).tile_type is partition.column_type(col)


# ----------------------------------------------------------------------
# Compatibility predicate properties
# ----------------------------------------------------------------------
@st.composite
def device_and_rects(draw):
    width = draw(st.integers(6, 18))
    height = draw(st.integers(3, 8))
    device = synthetic_device(width, height, bram_every=draw(st.integers(3, 6)))
    w = draw(st.integers(1, min(4, width)))
    h = draw(st.integers(1, min(3, height)))
    col_a = draw(st.integers(0, width - w))
    row_a = draw(st.integers(0, height - h))
    col_b = draw(st.integers(0, width - w))
    row_b = draw(st.integers(0, height - h))
    return device, Rect(col_a, row_a, w, h), Rect(col_b, row_b, w, h)


@given(data=device_and_rects())
@settings(**COMMON_SETTINGS)
def test_compatibility_is_symmetric_and_reflexive(data):
    device, rect_a, rect_b = data
    partition = columnar_partition(device)
    assert areas_compatible(partition, rect_a, rect_a)
    assert areas_compatible(partition, rect_a, rect_b) == areas_compatible(
        partition, rect_b, rect_a
    )


@given(data=device_and_rects())
@settings(**COMMON_SETTINGS)
def test_enumerated_areas_are_free_compatible(data):
    device, rect_a, _ = data
    partition = columnar_partition(device)
    candidates = enumerate_free_compatible_areas(partition, rect_a, occupied=[rect_a])
    for candidate in candidates:
        assert areas_compatible(partition, rect_a, candidate)
        assert not candidate.overlaps(rect_a)
    # the original column offset is always reported by the offset enumerator
    assert rect_a.col in compatible_column_offsets(partition, rect_a)


# ----------------------------------------------------------------------
# Sequence pair round trip
# ----------------------------------------------------------------------
@st.composite
def disjoint_rects(draw):
    count = draw(st.integers(2, 5))
    rects = {}
    col = 0
    for index in range(count):
        width = draw(st.integers(1, 3))
        height = draw(st.integers(1, 3))
        row = draw(st.integers(0, 4))
        rects[f"R{index}"] = Rect(col, row, width, height)
        col += width  # strictly non-overlapping in x
    return rects


@given(rects=disjoint_rects())
@settings(**COMMON_SETTINGS)
def test_sequence_pair_round_trip(rects):
    pair = SequencePair.from_rects(rects)
    assert pair.is_consistent_with(rects)
    assert set(pair.gamma_plus) == set(rects)
    relations = pair.relations()
    assert len(relations) == len(rects) * (len(rects) - 1)


# ----------------------------------------------------------------------
# CRC and relocation round trip
# ----------------------------------------------------------------------
@given(payload=st.binary(min_size=0, max_size=128), flip=st.integers(0, 1023))
@settings(**COMMON_SETTINGS)
def test_crc_detects_single_bit_flips(payload, flip):
    if not payload:
        assert crc32(payload) == 0
        return
    corrupted = bytearray(payload)
    corrupted[flip % len(corrupted)] ^= 1 << (flip % 8)
    if bytes(corrupted) != payload:
        assert crc32(payload) != crc32(bytes(corrupted))


@given(
    width=st.integers(8, 14),
    height=st.integers(3, 6),
    w=st.integers(1, 3),
    h=st.integers(1, 2),
    module=st.text(alphabet="abcdef", min_size=1, max_size=6),
)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_relocation_round_trip_preserves_payload(width, height, w, h, module):
    device = synthetic_device(width, height, bram_every=4, dsp_every=7)
    partition = columnar_partition(device)
    source_rect = Rect(0, 0, w, h)
    source = generate_bitstream(device, source_rect, module)
    candidates = enumerate_free_compatible_areas(partition, source_rect, occupied=[source_rect])
    for target in candidates[:3]:
        relocated = relocate_bitstream(source, target, device, partition)
        assert relocated.is_crc_valid()
        assert sorted(relocated.frames.values()) == sorted(source.frames.values())
        # relocating back home restores the original frame addresses
        back = relocate_bitstream(relocated, source_rect, device, partition)
        assert back.frames.keys() == source.frames.keys()
