"""Cross-process single-flight on the shared cache directory.

The multi-process tests spawn real child processes (``multiprocessing``) so
the per-fingerprint lock files are exercised across actual process
boundaries — concurrent identical misses elect exactly one solver, a killed
holder's stale lock is reclaimed, and corrupt locks are swept.
"""

import json
import multiprocessing
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.service.cache import SolveCache
from repro.service.results import JobResult

FP = "b" * 64


def make_result(fingerprint=FP) -> JobResult:
    return JobResult(
        fingerprint=fingerprint,
        job_name="flight",
        status="optimal",
        feasible=True,
        objective=1.0,
        solve_time=0.01,
        wall_time=0.01,
        backend="test",
        mode="HO",
    )


def dead_pid() -> int:
    """A pid guaranteed to be dead (a child we already reaped)."""
    child = subprocess.Popen([sys.executable, "-c", "pass"])
    child.wait()
    return child.pid


class TestFlightLockBasics:
    def test_acquire_is_exclusive_until_released(self, tmp_path):
        first = SolveCache(directory=tmp_path)
        second = SolveCache(directory=tmp_path)
        assert first.try_acquire_flight(FP)
        assert not second.try_acquire_flight(FP)
        assert second.flight_in_progress(FP)
        first.release_flight(FP)
        assert not second.flight_in_progress(FP)
        assert second.try_acquire_flight(FP)
        second.release_flight(FP)
        assert first.stats.flights == 1 and second.stats.flights == 1

    def test_release_is_idempotent(self, tmp_path):
        cache = SolveCache(directory=tmp_path)
        cache.release_flight(FP)  # nothing held: must not raise
        assert cache.try_acquire_flight(FP)
        cache.release_flight(FP)
        cache.release_flight(FP)

    def test_memory_only_cache_grants_every_claim(self):
        cache = SolveCache()
        assert cache.try_acquire_flight(FP)
        assert cache.try_acquire_flight(FP)  # no lock file, no exclusivity
        assert not cache.flight_in_progress(FP)
        cache.release_flight(FP)
        assert cache.stats.flights == 0  # flights count *file* leases only

    def test_lock_file_carries_holder_identity(self, tmp_path):
        cache = SolveCache(directory=tmp_path)
        assert cache.try_acquire_flight(FP)
        info = json.loads((tmp_path / f"{FP}.lock").read_text())
        assert info["pid"] == os.getpid()
        assert info["host"] == socket.gethostname()
        assert info["acquired_at"] <= time.time()
        cache.release_flight(FP)

    def test_clear_sweeps_lock_files(self, tmp_path):
        cache = SolveCache(directory=tmp_path)
        assert cache.try_acquire_flight(FP)
        cache.clear()
        assert not (tmp_path / f"{FP}.lock").exists()


class TestAwaitFlight:
    def test_waiter_gets_the_result_the_holder_stores(self, tmp_path):
        holder = SolveCache(directory=tmp_path)
        waiter = SolveCache(directory=tmp_path)
        assert holder.try_acquire_flight(FP)

        def solve_and_release():
            time.sleep(0.1)
            holder.put(make_result())
            holder.release_flight(FP)

        thread = threading.Thread(target=solve_and_release)
        thread.start()
        try:
            result = waiter.await_flight(FP, timeout=5.0, poll_interval=0.01)
        finally:
            thread.join()
        assert result is not None and result.fingerprint == FP

    def test_holder_releasing_without_a_result_unblocks_the_waiter(self, tmp_path):
        holder = SolveCache(directory=tmp_path)
        waiter = SolveCache(directory=tmp_path)
        assert holder.try_acquire_flight(FP)
        threading.Timer(0.05, holder.release_flight, args=(FP,)).start()
        result = waiter.await_flight(FP, timeout=5.0, poll_interval=0.01)
        assert result is None  # the holder failed: caller should solve

    def test_timeout_expires_while_holder_is_alive(self, tmp_path):
        holder = SolveCache(directory=tmp_path)
        waiter = SolveCache(directory=tmp_path)
        assert holder.try_acquire_flight(FP)
        try:
            started = time.monotonic()
            result = waiter.await_flight(FP, timeout=0.15, poll_interval=0.01)
            assert result is None
            assert time.monotonic() - started < 5.0
        finally:
            holder.release_flight(FP)


class TestStaleLockRecovery:
    def test_dead_holder_lock_is_reclaimed(self, tmp_path):
        lock = tmp_path / f"{FP}.lock"
        lock.write_text(json.dumps({
            "pid": dead_pid(),
            "host": socket.gethostname(),
            "acquired_at": time.time(),
        }))
        cache = SolveCache(directory=tmp_path)
        assert not cache.flight_in_progress(FP)
        assert cache.stats.stale_locks == 1
        assert not lock.exists()
        assert cache.try_acquire_flight(FP)  # the job can be re-solved
        cache.release_flight(FP)

    def test_remote_host_lock_goes_stale_by_age_only(self, tmp_path):
        lock = tmp_path / f"{FP}.lock"
        payload = {
            "pid": os.getpid(),  # alive — but the host differs, so not probed
            "host": "some-other-host",
            "acquired_at": time.time(),
        }
        lock.write_text(json.dumps(payload))
        fresh = SolveCache(directory=tmp_path, stale_lock_after=60.0)
        assert fresh.flight_in_progress(FP)  # young remote lock: respected

        payload["acquired_at"] = time.time() - 120.0
        lock.write_text(json.dumps(payload))
        assert not fresh.flight_in_progress(FP)  # aged out
        assert fresh.stats.stale_locks == 1

    def test_corrupt_lock_is_deleted_and_counted(self, tmp_path):
        lock = tmp_path / f"{FP}.lock"
        lock.write_text("{truncated")
        cache = SolveCache(directory=tmp_path)
        assert not cache.flight_in_progress(FP)
        assert cache.stats.corrupt_locks == 1
        assert not lock.exists()

    def test_lock_missing_required_fields_is_corrupt(self, tmp_path):
        lock = tmp_path / f"{FP}.lock"
        lock.write_text(json.dumps({"note": "no pid here"}))
        cache = SolveCache(directory=tmp_path)
        assert cache.try_acquire_flight(FP)  # reclaimed, then re-acquired
        assert cache.stats.corrupt_locks == 1
        cache.release_flight(FP)


# ----------------------------------------------------------------------
# real multi-process races
# ----------------------------------------------------------------------
def _race_worker(directory, fingerprint, queue):
    """One contender: claim the flight or await the winner's result."""
    cache = SolveCache(directory=directory)
    if cache.try_acquire_flight(fingerprint):
        time.sleep(0.2)  # a solve long enough that every peer sees the lock
        cache.put(make_result(fingerprint))
        cache.release_flight(fingerprint)
        queue.put(("solved", True))
    else:
        result = cache.await_flight(fingerprint, timeout=30.0, poll_interval=0.01)
        queue.put(("awaited", result is not None))


def _crash_worker(directory, fingerprint, ready):
    """Acquire the flight lock, signal, then die without releasing."""
    cache = SolveCache(directory=directory)
    assert cache.try_acquire_flight(fingerprint)
    ready.set()
    time.sleep(60.0)  # killed long before this returns


class TestCrossProcessSingleFlight:
    def test_concurrent_identical_misses_elect_exactly_one_solver(self, tmp_path):
        queue = multiprocessing.Queue()
        workers = [
            multiprocessing.Process(
                target=_race_worker, args=(str(tmp_path), FP, queue)
            )
            for _ in range(3)
        ]
        for worker in workers:
            worker.start()
        outcomes = [queue.get(timeout=60.0) for _ in workers]
        for worker in workers:
            worker.join(timeout=30.0)
        roles = sorted(role for role, _ok in outcomes)
        assert roles == ["awaited", "awaited", "solved"]
        assert all(ok for _role, ok in outcomes)  # every awaiter got the result
        # exactly one store happened fleet-wide
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 1
        assert not list(tmp_path.glob("*.lock"))

    def test_killed_holder_is_reclaimed_and_job_resolved(self, tmp_path):
        ready = multiprocessing.Event()
        holder = multiprocessing.Process(
            target=_crash_worker, args=(str(tmp_path), FP, ready)
        )
        holder.start()
        assert ready.wait(timeout=30.0)
        holder.kill()
        holder.join(timeout=30.0)

        cache = SolveCache(directory=tmp_path)
        deadline = time.monotonic() + 10.0
        acquired = False
        while time.monotonic() < deadline and not acquired:
            acquired = cache.try_acquire_flight(FP)  # reclaims the stale lock
            if not acquired:
                time.sleep(0.02)
        assert acquired, "stale lock of the killed holder was never reclaimed"
        assert cache.stats.stale_locks >= 1
        cache.put(make_result())  # the job is re-solved by the survivor
        cache.release_flight(FP)
        assert cache.probe(FP) is not None


class TestLockEdgeCases:
    """The failure shapes the chaos harness injects, pinned down in isolation."""

    def test_corrupt_lock_bytes_mid_flight_unblock_the_waiter(self, tmp_path):
        # the lock file is overwritten with garbage while a waiter polls: the
        # waiter must reclaim-and-return promptly, not sit out its full bound
        holder = SolveCache(directory=tmp_path)
        waiter = SolveCache(directory=tmp_path)
        assert holder.try_acquire_flight(FP)
        lock = tmp_path / f"{FP}.lock"
        threading.Timer(0.05, lock.write_text, args=('{"chaos": truncated',)).start()
        started = time.monotonic()
        result = waiter.await_flight(FP, timeout=30.0, poll_interval=0.01)
        assert result is None  # no result landed: the waiter should solve
        assert time.monotonic() - started < 5.0  # nowhere near the 30 s bound
        assert waiter.stats.corrupt_locks == 1
        assert not lock.exists()
        assert waiter.try_acquire_flight(FP)  # the job is solvable again
        waiter.release_flight(FP)

    def test_sigstopped_holder_hits_await_bound_then_break_flight(self, tmp_path):
        # alive-but-wedged: a SIGSTOPped holder passes the pid probe forever,
        # so only the wall-clock bound ends the wait — then break_flight is
        # the takeover path
        ready = multiprocessing.Event()
        holder = multiprocessing.Process(
            target=_crash_worker, args=(str(tmp_path), FP, ready)
        )
        holder.start()
        try:
            assert ready.wait(timeout=30.0)
            os.kill(holder.pid, signal.SIGSTOP)

            waiter = SolveCache(directory=tmp_path)
            result = waiter.await_flight(FP, timeout=0.3, poll_interval=0.02)
            assert result is None  # the bound expired, not stale reclaim
            assert waiter.stats.stale_locks == 0  # the holder never looked dead

            waiter.break_flight(FP)
            assert waiter.stats.broken_locks == 1
            assert not (tmp_path / f"{FP}.lock").exists()
            assert waiter.try_acquire_flight(FP)  # takeover-and-solve
            waiter.put(make_result())
            waiter.release_flight(FP)
            assert waiter.probe(FP) is not None
        finally:
            try:
                os.kill(holder.pid, signal.SIGCONT)
            except (OSError, TypeError):
                pass
            holder.kill()
            holder.join(timeout=30.0)

    def test_break_flight_on_a_missing_lock_counts_nothing(self, tmp_path):
        cache = SolveCache(directory=tmp_path)
        cache.break_flight(FP)  # nothing held: must not raise or count
        assert cache.stats.broken_locks == 0

    def test_hijacked_cache_dir_counts_errors_instead_of_raising(self, tmp_path):
        # the chaos FillCacheDir shape: the cache directory path is suddenly a
        # plain file, so every mkdir/open underneath it raises OSError.  The
        # cache must keep answering (memory tier + local solve) and count the
        # degraded coordination.
        target = tmp_path / "cache"
        cache = SolveCache(directory=target)
        target.write_bytes(b"chaos: cache tier unavailable\n")

        assert cache.try_acquire_flight(FP)  # liveness beats deduplication
        assert cache.stats.lock_errors == 1
        cache.put(make_result())
        assert cache.stats.store_errors == 1
        assert cache.get(FP) is not None  # the memory tier still answers
        cache.release_flight(FP)  # must not raise

        # the tier comes back: coordination resumes on the next claim
        target.unlink()
        assert cache.try_acquire_flight(FP)
        assert (target / f"{FP}.lock").exists()
        cache.release_flight(FP)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(pytest.main([__file__, "-v"]))
