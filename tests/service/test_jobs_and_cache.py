"""Job fingerprinting and the content-addressed solve cache."""

import json

import pytest

from repro.milp import SolverOptions
from repro.relocation import RelocationSpec
from repro.service import CacheStats, JobResult, SolveCache, SolveJob
from repro.workloads.synthetic import SyntheticWorkloadConfig, config_grid, synthetic_problem


def make_problem(seed: int = 0, num_regions: int = 3):
    return synthetic_problem(
        config=SyntheticWorkloadConfig(num_regions=num_regions, seed=seed)
    )


def make_result(fingerprint: str = "f" * 64, **overrides) -> JobResult:
    payload = dict(
        fingerprint=fingerprint,
        job_name="job",
        status="optimal",
        feasible=True,
        objective=1.5,
        solve_time=0.2,
        wall_time=0.3,
        backend="highs",
        mode="HO",
        metrics={"wasted_frames": 4, "wirelength": 10.0},
    )
    payload.update(overrides)
    return JobResult(**payload)


class TestFingerprint:
    def test_identical_content_same_fingerprint(self):
        # two independently-built, content-identical jobs hash the same
        a = SolveJob(make_problem(seed=3), options=SolverOptions(time_limit=10))
        b = SolveJob(make_problem(seed=3), options=SolverOptions(time_limit=10))
        assert a.problem is not b.problem
        assert a.fingerprint == b.fingerprint

    def test_tag_does_not_change_fingerprint(self):
        a = SolveJob(make_problem(), tag="")
        b = SolveJob(make_problem(), tag="retagged")
        assert a.fingerprint == b.fingerprint
        assert a.name != b.name

    @pytest.mark.parametrize(
        "changes",
        [
            {"mode": "O"},
            {"options": SolverOptions(time_limit=99)},
            {"options": SolverOptions(backend="branch-bound")},
            {"heuristic": "first-fit"},
            {"lexicographic": True},
            {"relocation": RelocationSpec.as_constraint({"R0": 1})},
        ],
    )
    def test_any_spec_change_changes_fingerprint(self, changes):
        base = SolveJob(make_problem())
        variant = SolveJob(make_problem(), **changes)
        assert base.fingerprint != variant.fingerprint

    def test_different_problem_changes_fingerprint(self):
        assert (
            SolveJob(make_problem(seed=0)).fingerprint
            != SolveJob(make_problem(seed=1)).fingerprint
        )

    def test_relocation_order_is_canonical(self):
        problem = make_problem(num_regions=3)
        forward = RelocationSpec.as_constraint({"R0": 1, "R1": 2})
        backward = RelocationSpec.as_constraint({"R1": 2, "R0": 1})
        assert (
            SolveJob(problem, relocation=forward).fingerprint
            == SolveJob(problem, relocation=backward).fingerprint
        )

    def test_problem_and_device_names_are_labels_not_content(self):
        plain = make_problem(seed=2)
        renamed = synthetic_problem(
            config=SyntheticWorkloadConfig(num_regions=3, seed=2), name="other-label"
        )
        assert plain.name != renamed.name
        assert SolveJob(plain).fingerprint == SolveJob(renamed).fingerprint

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SolveJob(make_problem(), mode="X")


class TestJobResultRoundTrip:
    def test_round_trip(self):
        result = make_result()
        again = JobResult.from_dict(json.loads(json.dumps(result.as_dict())))
        assert again == result

    def test_nan_objective_survives_json(self):
        result = make_result(objective=float("nan"), feasible=False, status="error")
        encoded = json.dumps(result.as_dict())  # must not emit bare NaN
        again = JobResult.from_dict(json.loads(encoded))
        assert again.objective != again.objective  # NaN

    def test_metric_accessors(self):
        assert make_result().wasted_frames == 4
        assert make_result(metrics=None).wasted_frames is None
        assert make_result().objective_key() < make_result(
            metrics={"wasted_frames": 9, "wirelength": 1.0}
        ).objective_key()
        # infeasible sorts after any feasible result
        assert make_result().objective_key() < make_result(
            feasible=False, metrics=None
        ).objective_key()


class TestSolveCache:
    def test_memory_round_trip(self):
        cache = SolveCache()
        assert cache.get("f" * 64) is None
        cache.put(make_result())
        hit = cache.get("f" * 64)
        assert hit is not None and hit.status == "optimal"
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_disk_round_trip(self, tmp_path):
        cache = SolveCache(tmp_path)
        cache.put(make_result())
        assert (tmp_path / f"{'f' * 64}.json").exists()

        fresh = SolveCache(tmp_path)  # new process simulation
        hit = fresh.get("f" * 64)
        assert hit is not None
        assert hit.wasted_frames == 4
        assert hit.cached is False  # the flag describes this run

    def test_corrupt_entry_is_a_miss_and_is_deleted(self, tmp_path):
        cache = SolveCache(tmp_path)
        bad = tmp_path / f"{'a' * 64}.json"
        bad.write_text("{not json")  # a truncated/interrupted write
        assert cache.get("a" * 64) is None
        assert cache.stats.misses == 1 and cache.stats.corrupt == 1
        assert not bad.exists()  # deleted: re-solved once, not failing forever
        # the slot is fully usable again after the cleanup
        cache.put(make_result(fingerprint="a" * 64))
        assert cache.get("a" * 64) is not None

    def test_schema_mismatched_entry_is_a_miss_but_kept(self, tmp_path):
        cache = SolveCache(tmp_path)
        # valid JSON from an incompatible JobResult schema: possibly written
        # by a NEWER process sharing the directory, so it must not be deleted
        bad = tmp_path / f"{'b' * 64}.json"
        bad.write_text('{"fingerprint": "x", "future_field": 1}')
        assert cache.get("b" * 64) is None
        assert cache.stats.corrupt == 1
        assert bad.exists()

    def test_clear_and_len(self, tmp_path):
        cache = SolveCache(tmp_path)
        cache.put(make_result())
        cache.put(make_result(fingerprint="e" * 64))
        assert len(cache) == 2
        assert list(cache.fingerprints()) == sorted(["e" * 64, "f" * 64])
        cache.drop_memory()
        assert len(cache) == 2  # still on disk
        cache.clear()
        assert len(cache) == 0

    def test_stats(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert set(stats.as_dict()) >= {"hits", "misses", "evictions", "corrupt"}


class TestSolveCacheLRU:
    def test_capacity_bounds_memory_with_eviction_counters(self):
        cache = SolveCache(capacity=2)
        fps = ["1" * 64, "2" * 64, "3" * 64]
        for fp in fps:
            cache.put(make_result(fingerprint=fp))
        assert cache.memory_size == 2
        assert cache.stats.evictions == 1
        assert cache.get(fps[0]) is None  # the LRU head was evicted
        assert cache.get(fps[2]) is not None

    def test_get_refreshes_recency(self):
        cache = SolveCache(capacity=2)
        first, second, third = "1" * 64, "2" * 64, "3" * 64
        cache.put(make_result(fingerprint=first))
        cache.put(make_result(fingerprint=second))
        assert cache.get(first) is not None  # refresh: second is now LRU
        cache.put(make_result(fingerprint=third))
        assert cache.get(first) is not None
        assert cache.get(second) is None  # evicted instead of first

    def test_memory_eviction_keeps_disk_entries(self, tmp_path):
        cache = SolveCache(tmp_path, capacity=1)
        first, second = "1" * 64, "2" * 64
        cache.put(make_result(fingerprint=first))
        cache.put(make_result(fingerprint=second))  # evicts `first` from memory
        assert cache.memory_size == 1
        assert len(cache) == 2  # both persisted
        hit = cache.get(first)  # reloaded from disk and re-promoted
        assert hit is not None
        assert cache.stats.hits == 1
        assert cache.memory_size == 1  # promotion evicted `second` from memory

    def test_unbounded_when_capacity_none(self):
        cache = SolveCache(capacity=None)
        for index in range(2000):
            cache.put(make_result(fingerprint=format(index, "064x")))
        assert cache.memory_size == 2000
        assert cache.stats.evictions == 0

    def test_default_capacity_is_bounded(self):
        cache = SolveCache()
        assert cache.capacity is not None and cache.capacity > 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SolveCache(capacity=0)


class TestConfigGrid:
    def test_grid_crosses_all_axes(self):
        grid = config_grid(num_regions=(3, 5), utilizations=(0.4, 0.6), seeds=(0, 1, 2))
        assert len(grid) == 12
        assert grid[0].num_regions == 3 and grid[0].utilization == 0.4
        assert grid[-1].num_regions == 5 and grid[-1].seed == 2

    def test_common_kwargs_forwarded(self):
        grid = config_grid(num_regions=(4,), bus_width=8.0)
        assert grid[0].bus_width == 8.0
