"""Batch execution, sweep aggregation and portfolio racing.

The MILP-solving tests share one module-scoped job grid (8 jobs on a small
device) and one cold batch solve, so the whole file adds a handful of
seconds, not a fresh solve per test.
"""

import pytest

from repro.device.catalog import synthetic_device
from repro.milp import SolverOptions
from repro.service import (
    BatchSolver,
    SolveCache,
    Strategy,
    run_portfolio,
    run_sweep,
    sweep_jobs,
)
from repro.service.portfolio import _pick_winner
from repro.service.sweep import constraint_for
from repro.workloads.synthetic import config_grid

FAST = SolverOptions(time_limit=30, mip_gap=0.05)


@pytest.fixture(scope="module")
def grid_jobs():
    """8 jobs: (2 sizes x 2 seeds) x (no relocation | one hard area)."""
    device = synthetic_device(12, 5, bram_every=4, dsp_every=9, name="svc-test-dev")
    configs = config_grid(num_regions=(3, 4), utilizations=(0.45,), seeds=(0, 1))
    jobs = sweep_jobs(
        [device],
        configs,
        relocations=(None, constraint_for(regions=1, copies=1)),
        modes=("HO",),
        options=FAST,
    )
    assert len(jobs) == 8
    return jobs


@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    return SolveCache(tmp_path_factory.mktemp("solve-cache"))


@pytest.fixture(scope="module")
def cold_report(grid_jobs, shared_cache):
    """The grid solved once, in parallel, populating the shared cache."""
    return BatchSolver(cache=shared_cache, executor="process").solve_all(grid_jobs)


class TestBatchSolver:
    def test_parallel_grid_is_verified_feasible(self, cold_report, grid_jobs):
        assert len(cold_report.results) == len(grid_jobs)
        assert cold_report.num_feasible == len(grid_jobs)
        assert cold_report.num_errors == 0
        assert cold_report.cache_hits == 0
        for job, result in zip(grid_jobs, cold_report.results):
            assert result.fingerprint == job.fingerprint  # submission order kept

    def test_warm_rerun_hits_cache_for_every_job(self, cold_report, grid_jobs, shared_cache):
        warm = BatchSolver(cache=shared_cache, executor="process").solve_all(grid_jobs)
        assert warm.cache_hits == len(grid_jobs)
        assert warm.hit_rate == 1.0
        assert all(result.cached for result in warm.results)

    def test_cached_results_are_deterministic(self, cold_report, grid_jobs, shared_cache):
        # a brand-new cache object reading the same directory reproduces the
        # cold results exactly (fingerprints and solution metrics)
        disk = BatchSolver(
            cache=SolveCache(shared_cache.directory), executor="serial"
        ).solve_all(grid_jobs)
        assert disk.cache_hits == len(grid_jobs)
        for cold_result, disk_result in zip(cold_report.results, disk.results):
            assert disk_result.fingerprint == cold_result.fingerprint
            assert disk_result.wasted_frames == cold_result.wasted_frames
            assert disk_result.status == cold_result.status

    def test_duplicate_jobs_are_deduplicated(self, grid_jobs):
        job = grid_jobs[0]
        solver = BatchSolver(executor="serial")  # private in-memory cache
        report = solver.solve_all([job, job, job])
        assert len(report.results) == 3
        assert {result.fingerprint for result in report.results} == {job.fingerprint}
        # one solve, two fan-out copies
        assert sum(1 for result in report.results if not result.cached) == 1
        assert solver.cache.stats.stores == 1

    def test_failures_are_captured_not_raised(self, grid_jobs):
        job = type(grid_jobs[0])(
            problem=grid_jobs[0].problem,
            options=SolverOptions(backend="no-such-backend"),
        )
        report = BatchSolver(executor="serial").solve_all([job])
        assert report.num_errors == 1
        assert report.results[0].status == "error"
        assert "no-such-backend" in report.results[0].error

    def test_streaming_interface_labels_indices(self, grid_jobs, shared_cache):
        solver = BatchSolver(cache=shared_cache, executor="serial")
        seen = sorted(
            index for index, _job, _result in solver.iter_results(grid_jobs)
        )
        assert seen == list(range(len(grid_jobs)))

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            BatchSolver(executor="gpu")

    def test_sweep_report_formatting(self, cold_report):
        table = cold_report.format(title="grid")
        assert "Wasted frames" in table and "svc-test-dev" in table
        summary = cold_report.summary()
        assert "8 jobs" in summary and "8 feasible" in summary

    def test_run_sweep_convenience(self, grid_jobs, shared_cache):
        report = run_sweep(grid_jobs, cache=shared_cache, executor="serial")
        assert report.hit_rate == 1.0


class TestBatchSolverErrorPaths:
    """Worker exception capture and streaming semantics across executor kinds.

    Error jobs use an unknown MILP backend, which raises inside the worker's
    ``execute_job`` regardless of executor kind — so the same failure shape is
    exercised in-process (serial), on pool threads and (above, via the module
    fixtures) in pool processes.
    """

    @staticmethod
    def failing_job(template):
        return type(template)(
            problem=template.problem,
            options=SolverOptions(backend="no-such-backend"),
        )

    @pytest.mark.parametrize("kind", ["serial", "thread"])
    def test_worker_exception_captured_per_executor(self, grid_jobs, kind):
        solver = BatchSolver(executor=kind, max_workers=2)
        report = solver.solve_all([self.failing_job(grid_jobs[0])])
        assert report.num_errors == 1
        result = report.results[0]
        assert result.status == "error" and not result.feasible
        assert "no-such-backend" in result.error
        assert result.objective != result.objective  # NaN sentinel

    def test_error_results_never_enter_the_cache(self, grid_jobs):
        solver = BatchSolver(executor="thread", max_workers=2)
        bad = self.failing_job(grid_jobs[0])
        solver.solve_all([bad])
        assert bad.fingerprint not in solver.cache
        assert solver.cache.stats.stores == 0
        # ... so the next batch retries it (and fails again) instead of
        # replaying a cached failure
        retry = solver.solve_all([bad])
        assert retry.num_errors == 1
        assert not retry.results[0].cached

    @pytest.mark.parametrize("kind", ["serial", "thread"])
    def test_mixed_batch_keeps_good_results(self, cold_report, grid_jobs, shared_cache, kind):
        # a failing job in the batch must not poison its siblings (the good
        # job is already cached by the module's cold solve -> no new MILP run)
        solver = BatchSolver(cache=shared_cache, executor=kind, max_workers=2)
        report = solver.solve_all([grid_jobs[0], self.failing_job(grid_jobs[0])])
        assert [result.status == "error" for result in report.results] == [False, True]
        assert report.num_errors == 1
        assert report.results[0].feasible

    def test_duplicate_fingerprint_streaming_order(self, cold_report, grid_jobs, shared_cache):
        # warm cache: hits stream first; for a cold duplicate group the first
        # yielded copy is the solve (cached=False) and the rest are fan-outs
        template = grid_jobs[0]
        fresh = type(template)(
            problem=template.problem,
            options=FAST.replace(time_limit=29),  # distinct fingerprint, same work
        )
        jobs = [grid_jobs[1], fresh, fresh, fresh]
        solver = BatchSolver(cache=shared_cache, executor="serial")
        streamed = list(solver.iter_results(jobs))
        # the warm job (index 0) streams before the cold duplicate group
        assert streamed[0][0] == 0 and streamed[0][2].cached
        cold = [(index, result) for index, _job, result in streamed[1:]]
        assert sorted(index for index, _ in cold) == [1, 2, 3]
        flags = [result.cached for index, result in sorted(cold)]
        assert flags == [False, True, True]
        # every copy shares the one solved record's content
        assert len({result.fingerprint for _, result in cold}) == 1

    def test_thread_executor_warm_replay(self, cold_report, grid_jobs, shared_cache):
        warm = BatchSolver(cache=shared_cache, executor="thread").solve_all(grid_jobs)
        assert warm.cache_hits == len(grid_jobs)
        assert warm.num_errors == 0


class TestSweepJobs:
    def test_grid_shape_and_order(self, grid_jobs):
        # devices x configs x relocations x modes, relocation innermost-but-one
        assert grid_jobs[0].relocation is None
        assert grid_jobs[1].relocation is not None
        names = [job.problem.name for job in grid_jobs]
        assert names[0] == names[1]  # same problem, different relocation entry
        assert len(set(names)) == 4  # 4 distinct (device, config) cells

    def test_constraint_for_targets_first_regions(self, grid_jobs):
        spec = grid_jobs[1].relocation
        assert spec.regions == [grid_jobs[1].problem.region_names[0]]
        assert spec.total_copies == 1


class TestPortfolio:
    @pytest.fixture(scope="class")
    def race(self, grid_jobs):
        job = grid_jobs[0]
        return run_portfolio(
            job.problem,
            options=FAST,
            strategies=(
                Strategy("HO-tessellation", kind="milp", mode="HO"),
                Strategy("annealing", kind="annealing"),
            ),
            policy="best",
            executor="serial",
        )

    def test_winner_is_best_feasible_by_objective_key(self, race):
        feasible = {
            name: outcome
            for name, outcome in race.outcomes.items()
            if outcome.feasible
        }
        assert feasible, "at least one strategy must solve the instance"
        expected = min(feasible, key=lambda name: feasible[name].objective_key())
        assert race.winner == expected
        assert race.winner_result is feasible[race.winner]

    def test_every_strategy_reported(self, race):
        assert list(race.outcomes) == ["HO-tessellation", "annealing"]
        assert "winner=" in race.summary()

    def test_first_feasible_serial_stops_early(self, grid_jobs):
        job = grid_jobs[0]
        result = run_portfolio(
            job.problem,
            options=FAST,
            strategies=(
                Strategy("annealing", kind="annealing"),
                Strategy("HO-tessellation", kind="milp", mode="HO"),
            ),
            policy="first_feasible",
            executor="serial",
        )
        assert result.winner == "annealing"
        # the race stopped before the MILP strategy started
        assert "HO-tessellation" not in result.outcomes

    def test_expired_deadline_marks_everything(self, grid_jobs):
        result = run_portfolio(
            grid_jobs[0].problem,
            options=FAST,
            deadline=0.0,
            executor="serial",
        )
        assert result.winner is None
        assert all(o.status == "deadline" for o in result.outcomes.values())

    def test_pick_winner_prefers_fewer_wasted_frames(self):
        from repro.service import JobResult

        def fake(name, wasted, wires, feasible=True):
            return JobResult(
                fingerprint="",
                job_name=name,
                status="optimal" if feasible else "infeasible",
                feasible=feasible,
                objective=0.0,
                solve_time=0.0,
                wall_time=0.0,
                backend="",
                mode="O",
                metrics={"wasted_frames": wasted, "wirelength": wires},
            )

        names = ["a", "b", "c", "d"]
        outcomes = {
            "a": fake("a", wasted=10, wires=1.0),
            "b": fake("b", wasted=4, wires=9.0),
            "c": fake("c", wasted=4, wires=2.0),
            "d": fake("d", wasted=0, wires=0.0, feasible=False),
        }
        # fewest wasted frames wins; wirelength breaks the tie; infeasible
        # results never win no matter their metrics
        assert _pick_winner(names, outcomes, "best") == "c"

    def test_deadline_returns_promptly_in_pool_mode(self, grid_jobs):
        # the pool must not be joined on exit: a strategy that needs far
        # longer than the deadline is abandoned, not waited for
        from repro.utils.timing import Timer

        slow = SolverOptions(time_limit=10, mip_gap=None)
        with Timer() as timer:
            result = run_portfolio(
                grid_jobs[-1].problem,
                relocation=grid_jobs[-1].relocation,
                options=slow,
                strategies=(Strategy("O-slow", kind="milp", mode="O"),),
                deadline=0.2,
                executor="thread",
            )
        assert timer.elapsed < 8  # not joined until the 10s solve finishes
        outcome = result.outcomes["O-slow"]
        assert outcome.status in ("deadline", "optimal", "feasible")

    def test_crashing_annealing_strategy_is_captured(self, grid_jobs, monkeypatch):
        import repro.baselines.annealing as annealing_mod

        def boom(problem, options=None):
            raise RuntimeError("annealer exploded")

        monkeypatch.setattr(annealing_mod, "annealing_floorplan", boom)
        result = run_portfolio(
            grid_jobs[0].problem,
            options=FAST,
            strategies=(Strategy("annealing", kind="annealing"),),
            executor="serial",
        )
        outcome = result.outcomes["annealing"]
        assert outcome.status == "error"
        assert "annealer exploded" in outcome.error
        assert result.winner is None

    def test_invalid_policy_rejected(self, grid_jobs):
        with pytest.raises(ValueError):
            run_portfolio(grid_jobs[0].problem, policy="median")

    def test_invalid_executor_rejected(self, grid_jobs):
        with pytest.raises(ValueError):
            run_portfolio(grid_jobs[0].problem, executor="threads")

    def test_duplicate_strategy_names_rejected(self, grid_jobs):
        with pytest.raises(ValueError):
            run_portfolio(
                grid_jobs[0].problem,
                strategies=(Strategy("x"), Strategy("x")),
            )


class TestTopLevelExports:
    def test_service_surface_reexported(self):
        import repro

        for name in (
            "SolveJob",
            "SolveCache",
            "BatchSolver",
            "SweepReport",
            "sweep_jobs",
            "run_sweep",
            "run_portfolio",
        ):
            assert name in repro.__all__ and hasattr(repro, name)

    def test_runtime_and_bitstream_surface_reexported(self):
        import repro

        for name in (
            "ReconfigurationManager",
            "ReconfigurationError",
            "RuntimeTrace",
            "PartialBitstream",
            "generate_bitstream",
            "relocate_bitstream",
            "ConfigurationMemory",
        ):
            assert name in repro.__all__ and hasattr(repro, name)

    def test_deprecated_runtime_error_alias(self):
        import pytest

        from repro.runtime import ReconfigurationError

        with pytest.warns(DeprecationWarning, match="ReconfigurationError"):
            from repro.runtime import RuntimeError_

        assert RuntimeError_ is ReconfigurationError
