"""On-disk cache entry schema versioning and the migration registry."""

import json

import pytest

from repro.service.cache import (
    CACHE_SCHEMA_VERSION,
    _MIGRATIONS,
    SolveCache,
    cache_migration,
    migrate_entry,
)
from repro.service.results import JobResult

FP = "a" * 64


def make_result(**overrides) -> JobResult:
    fields = dict(
        fingerprint=FP,
        job_name="migrate-me",
        status="optimal",
        feasible=True,
        objective=7.0,
        solve_time=0.5,
        wall_time=0.6,
        backend="test",
        mode="HO",
    )
    fields.update(overrides)
    return JobResult(**fields)


def write_v1_entry(directory, fingerprint=FP, drop_worker=True):
    """A PR 5 era entry: no schema_version marker (and no worker field)."""
    data = make_result(fingerprint=fingerprint).as_dict()
    data.pop("schema_version", None)
    if drop_worker:
        data.pop("worker", None)
    path = directory / f"{fingerprint}.json"
    path.write_text(json.dumps(data))
    return path


class TestMigrateEntry:
    def test_current_version_passes_through_unchanged(self):
        data = make_result().as_dict()
        data["schema_version"] = CACHE_SCHEMA_VERSION
        assert migrate_entry(data) is data  # no copy when nothing to do

    def test_v1_entry_is_upgraded(self):
        data = make_result().as_dict()
        data.pop("schema_version", None)
        data.pop("worker", None)
        upgraded = migrate_entry(data)
        assert upgraded is not data
        assert upgraded["schema_version"] == CACHE_SCHEMA_VERSION
        assert upgraded["worker"] == ""
        # the input dict was not mutated
        assert "schema_version" not in data and "worker" not in data

    def test_future_version_is_not_ours_to_touch(self):
        data = {"schema_version": CACHE_SCHEMA_VERSION + 1, "status": "optimal"}
        assert migrate_entry(data) is None

    def test_gap_in_the_chain_gives_up(self):
        # version 0 has no registered step
        assert migrate_entry({"schema_version": 0}) is None

    def test_non_integer_version_gives_up(self):
        assert migrate_entry({"schema_version": "new"}) is None
        assert migrate_entry({"schema_version": None}) is None

    def test_step_that_does_not_advance_is_an_error(self):
        @cache_migration(0)
        def bad_step(data):
            return data  # forgets to bump schema_version

        try:
            with pytest.raises(RuntimeError, match="did not advance"):
                migrate_entry({"schema_version": 0})
        finally:
            del _MIGRATIONS[0]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate cache migration"):

            @cache_migration(1)
            def shadow(data):  # pragma: no cover - must not register
                return data


class TestUpgradeOnRead:
    def test_old_entry_is_a_hit_and_is_rewritten(self, tmp_path):
        path = write_v1_entry(tmp_path)
        cache = SolveCache(directory=tmp_path)
        result = cache.get(FP)
        assert result is not None and result.objective == 7.0
        assert cache.stats.hits == 1 and cache.stats.migrated == 1
        # the upgraded form was persisted: versioned, worker present
        stored = json.loads(path.read_text())
        assert stored["schema_version"] == CACHE_SCHEMA_VERSION
        assert "worker" in stored

    def test_migration_runs_once_per_entry_not_per_lookup(self, tmp_path):
        write_v1_entry(tmp_path)
        cache = SolveCache(directory=tmp_path)
        assert cache.get(FP) is not None
        cache.drop_memory()
        assert cache.get(FP) is not None  # re-read from disk
        assert cache.stats.migrated == 1

    def test_second_process_sees_the_upgraded_entry(self, tmp_path):
        write_v1_entry(tmp_path)
        assert SolveCache(directory=tmp_path).get(FP) is not None
        second = SolveCache(directory=tmp_path)
        assert second.get(FP) is not None
        assert second.stats.migrated == 0  # already current on disk

    def test_future_entry_is_a_miss_and_left_on_disk(self, tmp_path):
        data = make_result().as_dict()
        data["schema_version"] = CACHE_SCHEMA_VERSION + 7
        path = tmp_path / f"{FP}.json"
        path.write_text(json.dumps(data))
        cache = SolveCache(directory=tmp_path)
        assert cache.get(FP) is None
        assert cache.stats.corrupt == 1
        assert path.exists()  # a newer build's file must not be deleted

    def test_fresh_writes_are_stamped_with_current_version(self, tmp_path):
        cache = SolveCache(directory=tmp_path)
        cache.put(make_result())
        stored = json.loads((tmp_path / f"{FP}.json").read_text())
        assert stored["schema_version"] == CACHE_SCHEMA_VERSION

    def test_migrated_counter_is_exported(self, tmp_path):
        cache = SolveCache(directory=tmp_path)
        assert "migrated" in cache.stats.as_dict()
