"""Router behaviour over real loopback HTTP against stub replica gateways.

Each "replica" is a :class:`BackgroundGateway` with a stubbed worker pool
(instant canned results, per-gateway in-memory cache), so the tests observe
exactly where the router sent each request: a repeat that lands on its owner
is a cache hit, a repeat that strays is a second stub solve.
"""

import asyncio

import pytest

from repro.fleet.harness import BackgroundRouter
from repro.fleet.router import FleetRouter, RouterConfig
from repro.server.gateway import BackgroundGateway, GatewayConfig
from repro.server.loadgen import GatewayClient, demo_payloads
from repro.server.protocol import job_from_dict
from repro.service.cache import SolveCache
from repro.service.results import JobResult


class StubWorkerPool:
    def __init__(self, cache: SolveCache):
        self.cache = cache
        self.solved = 0

    async def solve_batch(self, jobs, budgets=None):
        results = {}
        for job in jobs:
            self.solved += 1
            result = JobResult(
                fingerprint=job.fingerprint,
                job_name=job.name,
                status="optimal",
                feasible=True,
                objective=3.0,
                solve_time=0.01,
                wall_time=0.01,
                backend="stub",
                mode=job.mode,
            )
            self.cache.put(result)
            results[job.fingerprint] = result
        return results

    def shutdown(self, wait: bool = True):
        pass


class StubFleet:
    """N stub gateways plus a router frontend, torn down in one call."""

    def __init__(self, replicas: int = 2, router_config: RouterConfig = None):
        self.gateways = []
        self.pools = []
        for _ in range(replicas):
            cache = SolveCache()
            pool = StubWorkerPool(cache)
            gateway = BackgroundGateway(
                config=GatewayConfig(port=0, batch_window=0.005),
                cache=cache,
                worker_pool=pool,
            )
            self.gateways.append(gateway)
            self.pools.append(pool)
        addresses = [(gw.host, gw.port) for gw in self.gateways]
        self.router = BackgroundRouter(
            FleetRouter(
                addresses,
                router_config
                or RouterConfig(port=0, retry_deadline=10.0, retry_wait=0.02),
            )
        )

    @property
    def host(self):
        return self.router.router.config.host

    @property
    def port(self):
        return self.router.port

    def owner_index(self, payload) -> int:
        """Which gateway the ring assigns this payload's fingerprint to."""
        fingerprint = job_from_dict(payload).fingerprint
        node = self.router.router.ring.owner(fingerprint)
        for index, gateway in enumerate(self.gateways):
            if f"{gateway.host}:{gateway.port}" == node:
                return index
        raise AssertionError(f"owner {node} is not one of our gateways")

    def stop(self):
        self.router.stop()
        for gateway in self.gateways:
            gateway.stop()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()


@pytest.fixture(scope="module")
def payloads():
    return demo_payloads(unique=4, time_limit=20.0)


def via_router(fleet, requests):
    """Send ``requests`` payloads through the router on one connection."""

    async def scenario():
        responses = []
        async with GatewayClient(fleet.host, fleet.port) as client:
            for payload in requests:
                responses.append(await client.solve(payload))
        return responses

    return asyncio.run(scenario())


class TestRouting:
    def test_repeats_land_on_their_owner(self, payloads):
        with StubFleet(replicas=3) as fleet:
            responses = via_router(fleet, payloads + payloads)
            assert all(status == 200 for status, _body in responses)
            # sticky fingerprint routing: each unique solved exactly once
            # fleet-wide, every repeat was a memory-hot hit on its owner
            assert sum(pool.solved for pool in fleet.pools) == len(payloads)
            repeats = responses[len(payloads):]
            assert all(body["cached"] for _status, body in repeats)
            assert fleet.router.router.metrics.routed == 2 * len(payloads)
            assert fleet.router.router.metrics.failovers == 0

    def test_routes_and_errors(self, payloads):
        with StubFleet() as fleet:
            async def scenario():
                async with GatewayClient(fleet.host, fleet.port) as client:
                    results = {}
                    results["health"] = await client.healthz()
                    results["bad"] = await client.request(
                        "POST", "/solve", {"not": "a job"}
                    )
                    results["missing"] = await client.request("GET", "/nope")
                    results["wrong_method"] = await client.request("GET", "/solve")
                    return results

            results = asyncio.run(scenario())
        status, health = results["health"]
        assert status == 200 and health["status"] == "ok"
        assert {replica["up"] for replica in health["replicas"]} == {True}
        status, body = results["bad"]
        assert status == 400 and "error" in body
        assert results["missing"][0] == 404
        assert results["wrong_method"][0] == 405
        assert fleet.router.router.metrics.bad_requests == 1

    def test_solve_response_is_relayed_verbatim(self, payloads):
        with StubFleet() as fleet:
            (status, body), = via_router(fleet, payloads[:1])
            assert status == 200
            assert body["result"]["status"] == "optimal"
            assert body["result"]["backend"] == "stub"
            assert body["cached"] is False


class TestFailover:
    def test_dead_owner_fails_over_to_the_next_replica(self, payloads):
        with StubFleet(replicas=2) as fleet:
            payload = payloads[0]
            owner = fleet.owner_index(payload)
            fleet.gateways[owner].stop()
            (status, body), = via_router(fleet, [payload])
            assert status == 200
            assert body["result"]["status"] == "optimal"
            metrics = fleet.router.router.metrics
            assert metrics.failovers >= 1
            assert metrics.retries >= 1
            # the survivor did the solve
            assert fleet.pools[1 - owner].solved == 1

    def test_whole_fleet_down_answers_503_after_the_budget(self, payloads):
        config = RouterConfig(port=0, retry_deadline=0.4, retry_wait=0.02)
        with StubFleet(replicas=2, router_config=config) as fleet:
            for gateway in fleet.gateways:
                gateway.stop()
            (status, body), = via_router(fleet, payloads[:1])
            assert status == 503
            assert "error" in body
            assert fleet.router.router.metrics.unavailable == 1


class TestRollup:
    def test_counters_sum_and_histograms_merge(self, payloads):
        with StubFleet(replicas=2) as fleet:
            via_router(fleet, payloads + payloads)

            async def scrape():
                async with GatewayClient(fleet.host, fleet.port) as client:
                    _status, formatted = await client.metrics()
                    status, machine = await client.request(
                        "GET", "/metrics?format=json"
                    )
                    return formatted, status, machine

            formatted, status, machine = asyncio.run(scrape())
        assert status == 200
        assert formatted["replicas_reporting"] == 2
        # summed across replicas: all 8 requests, 4 misses + 4 hits
        assert formatted["counters"]["received"] == 2 * len(payloads)
        assert formatted["counters"]["cache_hits"] == len(payloads)
        assert formatted["counters"]["cache_misses"] == len(payloads)
        assert formatted["counters"]["hit_rate"] == 0.5
        assert formatted["router"]["routed"] == 2 * len(payloads)
        assert "counters" in formatted["tables"]
        # the machine document carries mergeable raw buckets, not tables
        assert "histograms" in machine and "tables" not in machine
        request_histogram = machine["histograms"]["request"]
        assert request_histogram["count"] == 2 * len(payloads)

    def test_down_replica_is_reported_not_fatal(self, payloads):
        with StubFleet(replicas=2) as fleet:
            fleet.gateways[0].stop()

            async def scrape():
                async with GatewayClient(fleet.host, fleet.port) as client:
                    return await client.metrics()

            status, rollup = asyncio.run(scrape())
        assert status == 200
        assert rollup["replicas_reporting"] == 1
        reporting = {r["node"]: r["reporting"] for r in rollup["replicas"]}
        assert sorted(reporting.values()) == [False, True]
