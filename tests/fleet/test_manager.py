"""Fleet supervision against lightweight stand-in replica processes.

``command_factory`` swaps the real ``python -m repro.server`` gateway for a
tiny stdlib HTTP stub (or a crash-looping no-op), so these tests cover the
spawn / health-check / restart-with-backoff machinery in a couple of seconds
instead of paying gateway start-up per case.
"""

import sys
import time

import pytest

from repro.fleet.manager import FleetConfig, FleetManager, default_command

_STUB_SERVER = """
import http.server, json, sys

class Handler(http.server.BaseHTTPRequestHandler):
    def do_GET(self):
        body = json.dumps({"status": "ok", "stub": True}).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass

http.server.HTTPServer(("127.0.0.1", int(sys.argv[1])), Handler).serve_forever()
"""


def stub_command(replica):
    return [sys.executable, "-c", _STUB_SERVER, str(replica.port)]


def crashing_command(replica):
    return [sys.executable, "-c", "pass"]


def make_config(tmp_path, **overrides):
    settings = dict(
        replicas=2,
        cache_dir=str(tmp_path / "cache"),
        backoff_base=0.05,
        backoff_cap=0.2,
        poll_interval=0.02,
        health_timeout=30.0,
    )
    settings.update(overrides)
    return FleetConfig(**settings)


class TestConfig:
    def test_replicas_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="replicas"):
            make_config(tmp_path, replicas=0)

    def test_cache_dir_is_required(self, tmp_path):
        with pytest.raises(ValueError, match="cache_dir"):
            make_config(tmp_path, cache_dir="")

    def test_backoff_window_validated(self, tmp_path):
        with pytest.raises(ValueError, match="backoff"):
            make_config(tmp_path, backoff_base=0.0)
        with pytest.raises(ValueError, match="backoff"):
            make_config(tmp_path, backoff_base=2.0, backoff_cap=1.0)

    def test_default_command_is_the_gateway(self):
        argv = default_command("127.0.0.1", 9000, "/tmp/cache", ("--shards", "4"))
        assert argv[:3] == [sys.executable, "-m", "repro.server"]
        assert "--port" in argv and "9000" in argv
        assert "--cache-dir" in argv and "/tmp/cache" in argv
        assert argv[-2:] == ["--shards", "4"]  # server_args ride at the end


class TestLifecycle:
    def test_start_waits_for_health_and_stop_reaps(self, tmp_path):
        manager = FleetManager(make_config(tmp_path), command_factory=stub_command)
        manager.start(wait_healthy=True)
        try:
            assert len(manager.ports) == 2
            assert len(set(manager.ports)) == 2  # distinct ephemeral ports
            assert manager.addresses == [
                ("127.0.0.1", port) for port in manager.ports
            ]
            for index in range(2):
                assert manager.healthz(index)["status"] == "ok"
            processes = [replica.process for replica in manager.replicas]
        finally:
            manager.stop()
        assert manager.replicas == []
        assert all(process.poll() is not None for process in processes)

    def test_double_start_rejected(self, tmp_path):
        manager = FleetManager(
            make_config(tmp_path, replicas=1), command_factory=stub_command
        )
        manager.start(wait_healthy=True)
        try:
            with pytest.raises(RuntimeError, match="already started"):
                manager.start()
        finally:
            manager.stop()

    def test_context_manager_stops_the_fleet(self, tmp_path):
        with FleetManager(
            make_config(tmp_path, replicas=1), command_factory=stub_command
        ).start(wait_healthy=True) as manager:
            process = manager.replicas[0].process
        assert process.poll() is not None


class TestSupervision:
    def test_killed_replica_restarts_within_backoff(self, tmp_path):
        manager = FleetManager(
            make_config(tmp_path, replicas=1), command_factory=stub_command
        )
        manager.start(wait_healthy=True)
        try:
            first_pid = manager.replicas[0].process.pid
            manager.kill_replica(0)
            manager.wait_healthy(0, timeout=30.0)
            replica = manager.replicas[0]
            assert replica.restarts == 1
            assert manager.total_restarts == 1
            assert replica.process.pid != first_pid
            assert manager.healthz(0) is not None
        finally:
            manager.stop()

    def test_crash_loop_backs_off_exponentially(self, tmp_path):
        manager = FleetManager(
            # jitter off: this test pins the deterministic exponential ceiling
            make_config(
                tmp_path, replicas=1, backoff_base=0.05, backoff_cap=0.4,
                backoff_jitter=False,
            ),
            command_factory=crashing_command,
        )
        manager.start(wait_healthy=False)
        try:
            time.sleep(1.2)
            restarts = manager.total_restarts
            # with doubling 0.05 -> 0.1 -> 0.2 -> 0.4 the supervisor cannot
            # have respawned more than ~8 times in 1.2 s, and must have
            # respawned at least twice — it neither gives up nor spins.
            assert 2 <= restarts <= 12
            assert manager.replicas[0].consecutive_failures >= 2
        finally:
            manager.stop()

    def test_healthz_is_none_for_a_dead_replica(self, tmp_path):
        manager = FleetManager(
            # a backoff window long enough that the replica stays down
            make_config(tmp_path, replicas=1, backoff_base=5.0, backoff_cap=10.0),
            command_factory=stub_command,
        )
        manager.start(wait_healthy=True)
        try:
            manager.kill_replica(0)
            assert manager.healthz(0, timeout=0.5) is None
        finally:
            manager.stop()


class TestRestartJitter:
    def test_jittered_delays_are_deterministic_per_seed(self, tmp_path):
        first = FleetManager(
            make_config(tmp_path, backoff_seed=42), command_factory=stub_command
        )
        second = FleetManager(
            make_config(tmp_path, backoff_seed=42), command_factory=stub_command
        )
        delays = [first._restart_delay(n) for n in range(6)]
        assert delays == [second._restart_delay(n) for n in range(6)]
        for failures, delay in enumerate(delays):
            # full jitter: anywhere in [0, min(cap, base * 2^n)]
            assert 0.0 <= delay <= min(0.2, 0.05 * 2.0 ** failures)

    def test_different_seeds_decorrelate_restart_schedules(self, tmp_path):
        # the point of the jitter: two replicas felled by one cause must not
        # come back in lockstep
        first = FleetManager(
            make_config(tmp_path, backoff_seed=1), command_factory=stub_command
        )
        second = FleetManager(
            make_config(tmp_path, backoff_seed=2), command_factory=stub_command
        )
        assert [first._restart_delay(4) for _ in range(4)] != [
            second._restart_delay(4) for _ in range(4)
        ]

    def test_jitter_disabled_returns_the_exact_ceiling(self, tmp_path):
        manager = FleetManager(
            make_config(tmp_path, backoff_jitter=False), command_factory=stub_command
        )
        assert manager._restart_delay(0) == pytest.approx(0.05)
        assert manager._restart_delay(1) == pytest.approx(0.1)
        assert manager._restart_delay(10) == pytest.approx(0.2)  # capped


class TestPauseResume:
    def test_paused_replica_is_alive_wedged_and_left_alone(self, tmp_path):
        manager = FleetManager(
            make_config(tmp_path, replicas=1), command_factory=stub_command
        )
        manager.start(wait_healthy=True)
        try:
            pid = manager.replicas[0].process.pid
            restarts_before = manager.total_restarts
            manager.pause_replica(0)
            assert manager.replicas[0].alive  # SIGSTOP is not a crash
            assert manager.healthz(0, timeout=0.3) is None  # but it answers nothing
            time.sleep(0.2)  # several supervisor poll intervals
            # the supervisor must not restart a paused-but-alive process
            assert manager.total_restarts == restarts_before
            assert manager.replicas[0].process.pid == pid
            manager.resume_replica(0)
            manager.wait_healthy(0, timeout=30.0)
            assert manager.healthz(0)["status"] == "ok"
        finally:
            manager.resume_replica(0)  # idempotent: never leave a stopped child
            manager.stop()
