"""Full-stack fleet tests: real replica subprocesses behind a real router.

One 2-replica fleet is shared by the whole module (replica start-up is the
expensive part); each test uses its own payload indices so cache state never
leaks between tests.
"""

import asyncio

import pytest

from repro.fleet import BackgroundFleet
from repro.server.loadgen import GatewayClient, demo_payloads, fetch_metrics_json
from repro.server.protocol import job_from_dict


@pytest.fixture(scope="module")
def payloads():
    return demo_payloads(unique=6, time_limit=20.0)


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("fleet-cache")
    with BackgroundFleet(replicas=2, cache_dir=str(cache_dir)) as running:
        yield running


def solve_at(host, port, payload):
    async def scenario():
        async with GatewayClient(host, port) as client:
            return await client.solve(payload)

    return asyncio.run(scenario())


def owner_port(fleet, payload) -> int:
    fingerprint = job_from_dict(payload).fingerprint
    node = fleet.router.ring.owner(fingerprint)
    return int(node.rsplit(":", 1)[1])


def rollup_cache(fleet):
    return fetch_metrics_json(fleet.host, fleet.port)["cache"]


class TestColdWarm:
    def test_miss_then_hit_through_the_router(self, fleet, payloads):
        status, body = solve_at(fleet.host, fleet.port, payloads[0])
        assert status == 200, body
        assert body["cached"] is False
        assert body["result"]["feasible"] is True
        status, body = solve_at(fleet.host, fleet.port, payloads[0])
        assert status == 200
        assert body["cached"] is True

    def test_warm_hit_crosses_replicas_via_the_shared_tier(self, fleet, payloads):
        first_port, second_port = fleet.manager.ports
        status, body = solve_at(fleet.host, first_port, payloads[1])
        assert status == 200 and body["cached"] is False
        # the *other* replica never solved this job, but shares the disk tier
        status, body = solve_at(fleet.host, second_port, payloads[1])
        assert status == 200
        assert body["cached"] is True


class TestCrossReplicaSingleFlight:
    def test_concurrent_identical_misses_store_exactly_once(self, fleet, payloads):
        payload = payloads[2]
        stores_before = rollup_cache(fleet)["stores"]
        first_port, second_port = fleet.manager.ports

        async def race():
            async def hit(port):
                async with GatewayClient(fleet.host, port) as client:
                    return await client.solve(payload)

            return await asyncio.gather(hit(first_port), hit(second_port))

        responses = asyncio.run(race())
        assert [status for status, _body in responses] == [200, 200]
        assert all(body["result"]["feasible"] for _status, body in responses)
        # exactly one solve fleet-wide: the loser awaited the winner's flight
        # (or arrived after the store and hit), it never solved again
        assert rollup_cache(fleet)["stores"] - stores_before == 1


class TestChaos:
    def test_killing_a_replica_fails_no_requests(self, fleet, payloads):
        payload = payloads[3]
        victim_port = owner_port(fleet, payload)
        victim_index = fleet.manager.ports.index(victim_port)
        fleet.manager.kill_replica(victim_index)
        # the request owned by the dead replica still succeeds: the router
        # fails over (or retries until the supervisor restarts it)
        status, body = solve_at(fleet.host, fleet.port, payload)
        assert status == 200, body
        assert body["result"]["feasible"] is True
        fleet.manager.wait_healthy(victim_index, timeout=60.0)
        assert fleet.manager.total_restarts >= 1
        # the restarted replica answers again, warm from the shared tier
        status, body = solve_at(fleet.host, victim_port, payload)
        assert status == 200
        assert body["cached"] is True


class TestFleetRollup:
    def test_rollup_reflects_both_replicas(self, fleet, payloads):
        solve_at(fleet.host, fleet.port, payloads[4])
        document = fetch_metrics_json(fleet.host, fleet.port)
        assert document["replicas_reporting"] == 2
        assert document["counters"]["received"] >= 1
        assert document["cache"]["stores"] >= 1
        assert document["router"]["routed"] >= 1
        assert "request" in document["histograms"]
