"""Circuit-breaker state machine with an injected clock."""

import pytest

from repro.fleet.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(threshold=3, open_for=0.5):
    clock = FakeClock()
    return CircuitBreaker(
        failure_threshold=threshold, open_for=open_for, clock=clock
    ), clock


class TestValidation:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_open_for_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(open_for=0.0)


class TestTransitions:
    def test_starts_closed_and_admits(self):
        breaker, _clock = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_only_past_the_failure_threshold(self):
        breaker, _clock = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # two flakes do not blackhole
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opened_total == 1

    def test_threshold_one_reproduces_cooldown_semantics(self):
        breaker, _clock = make_breaker(threshold=1)
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_success_resets_accumulated_failures(self):
        breaker, _clock = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # the streak restarted

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = make_breaker(threshold=1, open_for=0.5)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(0.6)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else keeps waiting
        assert breaker.state == HALF_OPEN

    def test_successful_probe_closes(self):
        breaker, clock = make_breaker(threshold=1, open_for=0.5)
        breaker.record_failure()
        clock.advance(0.6)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_a_fresh_window(self):
        breaker, clock = make_breaker(threshold=1, open_for=0.5)
        breaker.record_failure()
        clock.advance(0.6)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN  # a fresh window, not half-open
        assert not breaker.allow()
        assert breaker.opened_total == 1  # re-opens are not new closed->open edges
        clock.advance(0.6)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
