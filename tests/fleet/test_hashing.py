"""Consistent-hash ring: determinism, balance, and minimal remapping."""

import itertools

import pytest

from repro.fleet.hashing import DEFAULT_VNODES, HashRing


def keys(count: int):
    return [f"{index:064x}" for index in range(count)]


class TestConstruction:
    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            HashRing(["a", "b", "a"])

    def test_non_positive_vnodes_rejected(self):
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)

    def test_len_counts_nodes_not_vnodes(self):
        assert len(HashRing(["a", "b", "c"])) == 3


class TestDeterminism:
    def test_owner_is_stable_across_instances(self):
        first = HashRing(["n1", "n2", "n3"])
        second = HashRing(["n1", "n2", "n3"])
        assert [first.owner(k) for k in keys(50)] == [
            second.owner(k) for k in keys(50)
        ]

    def test_node_order_does_not_matter(self):
        forward = HashRing(["n1", "n2", "n3"])
        shuffled = HashRing(["n3", "n1", "n2"])
        assert [forward.owner(k) for k in keys(50)] == [
            shuffled.owner(k) for k in keys(50)
        ]

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.owner(k) == "only" for k in keys(20))


class TestPreference:
    def test_preference_starts_with_owner_and_covers_all_nodes(self):
        nodes = ["n1", "n2", "n3", "n4"]
        ring = HashRing(nodes)
        for key in keys(30):
            chain = list(ring.preference(key))
            assert chain[0] == ring.owner(key)
            assert sorted(chain) == sorted(nodes)  # a permutation: no dupes

    def test_preference_is_lazy_and_stable(self):
        ring = HashRing(["n1", "n2", "n3", "n4"])
        key = keys(1)[0]
        # taking a prefix (the router rarely walks past the owner) matches
        # the full chain's head
        prefix = list(itertools.islice(ring.preference(key), 2))
        assert prefix == list(ring.preference(key))[:2]


class TestDistribution:
    def test_spread_is_roughly_balanced(self):
        nodes = [f"n{index}" for index in range(4)]
        ring = HashRing(nodes, vnodes=DEFAULT_VNODES)
        counts = ring.spread(keys(2000))
        assert sorted(counts) == sorted(nodes)
        for node in nodes:
            # each node should get 25% +- a generous consistent-hash tolerance
            assert 0.10 < counts[node] / 2000 < 0.45

    def test_removing_a_node_only_remaps_its_keys(self):
        sample = keys(1000)
        full = HashRing(["n1", "n2", "n3", "n4"])
        reduced = HashRing(["n1", "n2", "n3"])
        moved = 0
        for key in sample:
            before = full.owner(key)
            after = reduced.owner(key)
            if before == "n4":
                assert after != "n4"
            elif before != after:
                moved += 1
        # keys not owned by the removed node stay put (consistent hashing)
        assert moved == 0
