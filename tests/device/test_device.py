"""Unit tests for resources, tiles, grids and the device catalog."""

import pytest

from repro.device import (
    BRAM,
    CLB,
    DSP,
    FPGADevice,
    ResourceType,
    ResourceVector,
    TileType,
    TileTypeRegistry,
    simple_two_type_device,
    synthetic_device,
    validate_device,
    virtex5_fx70t_like,
    virtex7_like,
    zynq_like,
)
from repro.device.grid import ForbiddenRect
from repro.device.validation import DeviceValidationError


class TestResourceVector:
    def test_construction_from_strings(self):
        vec = ResourceVector({"CLB": 3, "bram": 1})
        assert vec[ResourceType.CLB] == 3 and vec[ResourceType.BRAM] == 1

    def test_kwargs_construction(self):
        vec = ResourceVector(CLB=2, DSP=1)
        assert vec.total == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(CLB=-1)

    def test_addition_and_scaling(self):
        a = ResourceVector(CLB=2)
        b = ResourceVector(CLB=1, BRAM=1)
        assert (a + b).as_dict() == {"CLB": 3, "BRAM": 1}
        assert (a * 3)[ResourceType.CLB] == 6

    def test_subtract_and_clamp(self):
        a = ResourceVector(CLB=2, BRAM=1)
        b = ResourceVector(CLB=1, BRAM=2)
        with pytest.raises(ValueError):
            a.subtract(b)
        clamped = a.subtract(b, clamp=True)
        assert clamped[ResourceType.BRAM] == 0 and clamped[ResourceType.CLB] == 1

    def test_covers_and_deficit(self):
        cap = ResourceVector(CLB=5, BRAM=2)
        need = ResourceVector(CLB=3, BRAM=2)
        assert cap.covers(need)
        assert not need.covers(cap)
        assert cap.deficit(need).is_zero()
        assert need.deficit(cap).as_dict() == {"CLB": 2}

    def test_equality_and_hash(self):
        assert ResourceVector(CLB=1) == ResourceVector({"CLB": 1})
        assert hash(ResourceVector(CLB=1)) == hash(ResourceVector({ResourceType.CLB: 1}))
        assert ResourceVector() == ResourceVector.zero()

    def test_unknown_resource_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector({"URAM9": 1})


class TestTileTypes:
    def test_paper_frame_counts(self):
        assert CLB.frames == 36 and BRAM.frames == 30 and DSP.frames == 28

    def test_invalid_frames_rejected(self):
        with pytest.raises(ValueError):
            TileType("BAD", ResourceVector(CLB=1), frames=0)

    def test_registry_conflict_rejected(self):
        registry = TileTypeRegistry()
        clone = TileType("CLB", ResourceVector(CLB=2), frames=36)
        with pytest.raises(ValueError):
            registry.register(clone)

    def test_registry_lookup(self):
        registry = TileTypeRegistry()
        assert registry.get("BRAM") is BRAM
        assert "DSP" in registry and len(registry) == 3
        with pytest.raises(KeyError):
            registry.get("URAM")


class TestFPGADevice:
    def test_from_columns_shape(self):
        device = FPGADevice.from_columns("d", [CLB, BRAM, CLB], height=4)
        assert device.width == 3 and device.height == 4
        assert device.tile_type_at(1, 2) is BRAM

    def test_ragged_grid_rejected(self):
        with pytest.raises(ValueError):
            FPGADevice("bad", [[CLB, CLB], [CLB]])

    def test_forbidden_mask(self):
        device = FPGADevice.from_columns(
            "d", [CLB] * 4, height=4, forbidden=[ForbiddenRect("X", 1, 1, 2, 2)]
        )
        assert device.is_forbidden(1, 1) and device.is_forbidden(2, 2)
        assert not device.is_forbidden(0, 0)
        assert device.num_usable_tiles == 16 - 4
        assert len(list(device.forbidden_cells())) == 4

    def test_forbidden_outside_bounds_rejected(self):
        with pytest.raises(ValueError):
            FPGADevice.from_columns(
                "d", [CLB] * 3, height=3, forbidden=[ForbiddenRect("X", 2, 2, 2, 2)]
            )

    def test_cell_bounds_checked(self):
        device = simple_two_type_device()
        with pytest.raises(IndexError):
            device.tile_type_at(device.width, 0)

    def test_total_resources_and_frames(self):
        device = FPGADevice.from_columns("d", [CLB, BRAM, DSP], height=2)
        resources = device.total_resources()
        assert resources.as_dict() == {"CLB": 2, "BRAM": 2, "DSP": 2}
        assert device.total_frames() == 2 * (36 + 30 + 28)

    def test_column_type_queries(self):
        device = simple_two_type_device()
        assert device.column_is_uniform(0)
        assert device.column_type(4) is BRAM


class TestCatalog:
    def test_fx70t_matches_paper_characteristics(self):
        device = virtex5_fx70t_like()
        counts = {t.name: c for t, c in device.tile_count_by_type().items()}
        # exactly two DSP columns keep the matched filter / video decoder
        # free-compatible areas infeasible (the Section VI counting argument)
        assert counts["DSP"] == 2 * device.height
        assert counts["BRAM"] >= 14  # SDR3 aggregate BRAM demand
        assert counts["CLB"] >= 176  # SDR3 aggregate CLB demand
        assert len(device.forbidden) == 1  # the PowerPC block

    def test_catalog_devices_validate(self):
        for factory in (virtex5_fx70t_like, virtex7_like, zynq_like, simple_two_type_device):
            warnings = validate_device(factory())
            assert isinstance(warnings, list)

    def test_synthetic_device_dimensions(self):
        device = synthetic_device(12, 5, bram_every=4, dsp_every=6)
        assert device.width == 12 and device.height == 5
        assert device.column_type(6).name == "DSP"
        assert device.column_type(4).name == "BRAM"
        assert device.column_type(0).name == "CLB"

    def test_synthetic_forbidden_needs_seed(self):
        with pytest.raises(ValueError):
            synthetic_device(10, 5, forbidden_blocks=1)
        device = synthetic_device(10, 5, forbidden_blocks=2, seed=3)
        assert len(device.forbidden) == 2

    def test_invalid_synthetic_size(self):
        with pytest.raises(ValueError):
            synthetic_device(0, 5)


class TestValidation:
    def test_overlapping_forbidden_rects_rejected(self):
        device = FPGADevice.from_columns(
            "d",
            [CLB] * 4,
            height=4,
            forbidden=[ForbiddenRect("A", 0, 0, 2, 2), ForbiddenRect("B", 1, 1, 2, 2)],
        )
        with pytest.raises(DeviceValidationError):
            validate_device(device)

    def test_non_columnar_device_rejected(self):
        grid = [[CLB, BRAM], [CLB, CLB]]  # column 0 mixes types vertically
        device = FPGADevice("bad", grid)
        with pytest.raises(DeviceValidationError):
            validate_device(device)

    def test_homogeneous_device_warns(self):
        device = FPGADevice.from_columns("homog", [CLB] * 4, height=3)
        warnings = validate_device(device)
        assert any("homogeneous" in w for w in warnings)


class TestRectangleAggregates:
    """The vectorized rectangle queries must match per-cell loops exactly."""

    @pytest.fixture(scope="class")
    def device(self):
        return synthetic_device(
            12, 6, bram_every=4, dsp_every=9, forbidden_blocks=2, seed=5, name="agg"
        )

    def test_tile_type_histogram_matches_cell_loop(self, device):
        for col, row, width, height in [
            (0, 0, 1, 1),
            (0, 0, device.width, device.height),
            (3, 1, 5, 4),
            (8, 2, 4, 3),
        ]:
            histogram = device.tile_type_histogram(col, row, width, height)
            expected = [0] * len(device.tile_type_list)
            for c in range(col, col + width):
                for r in range(row, row + height):
                    expected[device.type_index_at(c, r)] += 1
            assert histogram == expected
            assert sum(histogram) == width * height

    def test_forbidden_cell_count_matches_cell_loop(self, device):
        for col, row, width, height in [
            (0, 0, device.width, device.height),
            (2, 0, 6, 5),
            (5, 3, 3, 2),
        ]:
            count = device.forbidden_cell_count(col, row, width, height)
            expected = sum(
                1
                for c in range(col, col + width)
                for r in range(row, row + height)
                if device.is_forbidden(c, r)
            )
            assert count == expected

    def test_out_of_bounds_rectangles_rejected(self, device):
        with pytest.raises(IndexError):
            device.tile_type_histogram(0, 0, device.width + 1, 1)
        with pytest.raises(IndexError):
            device.forbidden_cell_count(device.width - 1, 0, 2, 1)
