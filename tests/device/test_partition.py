"""Unit tests for the columnar partitioning procedure (Section III.B)."""

import pytest

from repro.device import BRAM, CLB, DSP, FPGADevice, columnar_partition
from repro.device.catalog import figure2_device, simple_two_type_device, virtex5_fx70t_like
from repro.device.grid import ForbiddenRect
from repro.device.partition import PartitionError


class TestColumnarPartition:
    def test_adjacent_portions_differ(self):
        partition = columnar_partition(virtex5_fx70t_like())
        partition.check_properties()  # Property .3 and .4
        for left, right in zip(partition.portions, partition.portions[1:]):
            assert left.tile_type != right.tile_type

    def test_portions_cover_every_column_once(self):
        partition = columnar_partition(simple_two_type_device())
        covered = []
        for portion in partition.portions:
            covered.extend(portion.columns())
        assert sorted(covered) == list(range(partition.width))

    def test_same_type_adjacent_columns_merge(self):
        device = FPGADevice.from_columns("d", [CLB, CLB, BRAM, CLB], height=3)
        partition = columnar_partition(device)
        assert partition.num_portions == 3
        assert partition.portions[0].width == 2

    def test_portion_ordering_matches_columns(self):
        partition = columnar_partition(virtex5_fx70t_like())
        for index, portion in enumerate(partition.portions):
            assert portion.index == index
        starts = [p.col_start for p in partition.portions]
        assert starts == sorted(starts)

    def test_portion_of_column_lookup(self):
        partition = columnar_partition(simple_two_type_device())
        for col in range(partition.width):
            assert partition.portion_of_column(col).contains_column(col)
        with pytest.raises(IndexError):
            partition.portion_of_column(partition.width)

    def test_type_ids_are_dense(self):
        partition = columnar_partition(virtex5_fx70t_like())
        ids = partition.portion_type_ids()
        assert set(ids) == set(range(partition.num_types))
        assert partition.num_types == 3

    def test_forbidden_tile_replacement(self):
        device = figure2_device()
        partition = columnar_partition(device)
        # the processor block overlaps CLB columns; after step 1 those columns
        # must read as CLB for partitioning purposes
        for col in range(4, 6):
            assert partition.column_type(col) is CLB
        assert len(partition.forbidden_areas) == 1
        area = partition.forbidden_areas[0]
        assert (area.col_start, area.col_end) == (4, 5)
        assert set(area.rows) == {2, 3}

    def test_forbidden_cells_tracked(self):
        partition = columnar_partition(figure2_device())
        cells = set(partition.forbidden_cells())
        assert (4, 2) in cells and (5, 3) in cells
        assert partition.is_forbidden_cell(4, 2)
        assert not partition.is_forbidden_cell(0, 0)

    def test_frames_in_column(self):
        partition = columnar_partition(virtex5_fx70t_like())
        assert partition.frames_in_column(0) == 36  # CLB column
        assert partition.frames_in_column(4) == 30  # BRAM column
        assert partition.frames_in_column(8) == 28  # DSP column

    def test_non_columnar_device_raises(self):
        grid = [[CLB, CLB, BRAM], [CLB, CLB, CLB]]
        device = FPGADevice("bad", grid)
        with pytest.raises(PartitionError):
            columnar_partition(device)

    def test_mixed_column_under_forbidden_is_replaced(self):
        # a column whose only non-CLB tiles are forbidden partitions as CLB
        grid = [[CLB, CLB, CLB], [CLB, DSP, CLB], [CLB, CLB, CLB]]
        device = FPGADevice(
            "mixed", grid, forbidden=[ForbiddenRect("HARD", col=1, row=1, width=1, height=1)]
        )
        partition = columnar_partition(device)
        assert partition.column_type(1) is CLB
        assert partition.num_portions == 1

    def test_paper_figure2_sets(self):
        """Figure 2d: the example yields the expected P and A set sizes."""
        partition = columnar_partition(figure2_device())
        # pattern CCBCCCCBCC -> portions C,B,C,B,C = 5
        assert partition.num_portions == 5
        assert [p.tile_type.name for p in partition.portions] == [
            "CLB", "BRAM", "CLB", "BRAM", "CLB",
        ]
        assert len(partition.forbidden_areas) == 1
