"""Tests of the MILP relocation extension (Sections IV and V) and the analysis."""

import pytest

from repro.floorplan import FloorplanSolver, verify_floorplan
from repro.floorplan.milp_builder import build_floorplan_milp
from repro.relocation import (
    RelocationSpec,
    apply_relocation_constraints,
    feasibility_analysis,
)
from repro.relocation.analysis import count_reachable_copies, reachable_copies_by_region
from repro.relocation.metric import (
    relocation_cost,
    relocation_cost_normalized,
    relocation_summary,
    satisfied_areas_by_region,
)


class TestRelocationConstraints:
    def test_offset_variables_created_per_involved_area(self, tiny_problem):
        spec = RelocationSpec.as_constraint({"beta": 1})
        milp = build_floorplan_milp(tiny_problem, extra_areas=spec.build_area_specs(tiny_problem))
        added = apply_relocation_constraints(milp)
        assert set(added.offset) == {"beta", "beta 1"}
        assert added.pairs == [("beta 1", "beta")]
        assert added.num_constraints_added > 0
        num_portions = tiny_problem.partition.num_portions
        assert len(added.offset_vars("beta")) == num_portions

    def test_no_free_areas_is_a_noop(self, tiny_problem):
        milp = build_floorplan_milp(tiny_problem)
        added = apply_relocation_constraints(milp)
        assert added.pairs == [] and added.num_constraints_added == 0

    def test_soft_areas_get_violation_binaries(self, tiny_problem):
        spec = RelocationSpec.as_metric({"beta": 1, "gamma": 1})
        milp = build_floorplan_milp(tiny_problem, extra_areas=spec.build_area_specs(tiny_problem))
        assert set(milp.violation) == {"beta 1", "gamma 1"}
        rl_cost = milp.relocation_cost_expr()
        assert len(list(rl_cost.variables())) == 2
        assert milp.relocation_cost_max() == pytest.approx(2.0)

    def test_hard_constraint_solution_is_truly_compatible(self, tiny_relocation_solution):
        report, spec = tiny_relocation_solution
        floorplan = report.floorplan
        assert floorplan.num_free_compatible_areas == spec.total_copies
        # the independent verifier re-checks Definition .2 geometrically
        assert verify_floorplan(floorplan).is_feasible

    def test_offset_semantics_in_solution(self, tiny_relocation_solution):
        """o[n,p] must flag exactly the first covered portion (eqs. 4-5)."""
        report, _ = tiny_relocation_solution
        milp = report.milp
        solution = report.solution
        # recompute offsets from the k values and compare with the o variables
        from repro.relocation.constraints import apply_relocation_constraints  # noqa: F401

        for area_name, k_vars in milp.k.items():
            placement = report.floorplan.placement_for(area_name)
            first_portion = milp.partition.portion_of_column(placement.rect.col).index
            covered = [p for p, var in enumerate(k_vars) if solution.value(var) > 0.5]
            assert covered, f"area {area_name} covers no portion"
            assert covered[0] == first_portion

    def test_metric_mode_never_infeasible(self, tiny_problem, fast_options):
        # request an impossible number of copies: soft mode must still solve
        spec = RelocationSpec.as_metric({"alpha": 6})
        report = FloorplanSolver(tiny_problem, relocation=spec, options=fast_options).solve()
        assert report.solution.status.has_solution
        floorplan = report.floorplan
        assert len(floorplan.free_areas) == 6
        assert floorplan.num_free_compatible_areas < 6  # some areas violated
        summary = relocation_summary(floorplan, spec)[0]
        assert summary.missed == summary.requested - summary.satisfied
        assert relocation_cost(floorplan, spec) == pytest.approx(summary.missed * 1.0)
        assert 0 < relocation_cost_normalized(floorplan, spec) <= 1

    def test_satisfied_areas_by_region(self, tiny_relocation_solution):
        report, _ = tiny_relocation_solution
        counts = satisfied_areas_by_region(report.floorplan)
        assert counts == {"beta": 1, "gamma": 1}


class TestFeasibilityAnalysis:
    def test_per_region_feasibility(self, tiny_problem, fast_options):
        results = feasibility_analysis(
            tiny_problem, regions=["beta", "gamma"], options=fast_options
        )
        assert [r.region for r in results] == ["beta", "gamma"]
        for result in results:
            assert result.feasible
            assert result.floorplan is not None
            assert result.floorplan.num_free_compatible_areas == 1

    def test_reachable_copies_counting(self, tiny_solution):
        floorplan = tiny_solution.floorplan
        counts = reachable_copies_by_region(floorplan)
        assert set(counts) == set(floorplan.placements)
        for name, count in counts.items():
            assert count >= 0
            assert count == count_reachable_copies(floorplan, name)

    def test_reachable_copies_respects_cap(self, tiny_solution):
        floorplan = tiny_solution.floorplan
        name = next(iter(floorplan.placements))
        unlimited = count_reachable_copies(floorplan, name)
        capped = count_reachable_copies(floorplan, name, max_copies=1)
        assert capped <= min(1, unlimited) or capped == min(1, unlimited)
