"""Unit tests for compatibility predicates and relocation specs."""

import pytest

from repro.floorplan import Rect
from repro.relocation import (
    RelocationRequest,
    RelocationSpec,
    areas_compatible,
    enumerate_free_compatible_areas,
    is_free_compatible,
)
from repro.relocation.compatibility import compatible_column_offsets, select_disjoint_areas


class TestCompatibility:
    def test_figure1_example(self, two_type_partition):
        """Figure 1: same column signature => compatible, shifted signature => not."""
        # BRAM columns of simple_two_type_device are 4 and 9
        area_a = Rect(3, 0, 3, 2)   # CLB, BRAM, CLB
        area_b = Rect(8, 3, 3, 2)   # CLB, BRAM, CLB  (same relative layout)
        area_c = Rect(4, 0, 3, 2)   # BRAM, CLB, CLB  (shifted layout)
        assert areas_compatible(two_type_partition, area_a, area_b)
        assert areas_compatible(two_type_partition, area_b, area_a)
        assert not areas_compatible(two_type_partition, area_a, area_c)

    def test_shape_mismatch_not_compatible(self, two_type_partition):
        assert not areas_compatible(two_type_partition, Rect(0, 0, 2, 2), Rect(0, 2, 2, 3))
        assert not areas_compatible(two_type_partition, Rect(0, 0, 2, 2), Rect(0, 2, 3, 2))

    def test_out_of_bounds_not_compatible(self, two_type_partition):
        inside = Rect(0, 0, 2, 2)
        outside = Rect(two_type_partition.width - 1, 0, 2, 2)
        assert not areas_compatible(two_type_partition, inside, outside)

    def test_same_rect_is_compatible_with_itself(self, two_type_partition):
        rect = Rect(1, 1, 2, 2)
        assert areas_compatible(two_type_partition, rect, rect)

    def test_free_compatible_requires_no_overlap(self, two_type_partition):
        region = Rect(0, 0, 2, 2)
        candidate = Rect(0, 2, 2, 2)
        assert is_free_compatible(two_type_partition, region, candidate)
        blocker = Rect(1, 2, 2, 2)
        assert not is_free_compatible(two_type_partition, region, candidate, [blocker])

    def test_free_compatible_rejects_forbidden(self, fx70t_device):
        from repro.device.partition import columnar_partition

        partition = columnar_partition(fx70t_device)
        region = Rect(0, 0, 2, 3)
        # columns 13-14 rows 3-5 are the PPC block
        candidate = Rect(12, 3, 2, 3)
        assert not is_free_compatible(partition, region, candidate)

    def test_compatible_column_offsets(self, two_type_partition):
        # signature CLB,BRAM,CLB occurs at columns 3 and 8 only
        offsets = compatible_column_offsets(two_type_partition, Rect(3, 0, 3, 2))
        assert offsets == [3, 8]
        with pytest.raises(ValueError):
            compatible_column_offsets(two_type_partition, Rect(11, 0, 3, 1))

    def test_enumeration_excludes_original_and_blockers(self, two_type_partition):
        region = Rect(3, 0, 3, 2)
        candidates = enumerate_free_compatible_areas(two_type_partition, region)
        assert region not in candidates
        assert all(c.width == 3 and c.height == 2 for c in candidates)
        # occupying the other BRAM column halves the options
        blocked = enumerate_free_compatible_areas(
            two_type_partition, region, occupied=[Rect(8, 0, 3, 6)]
        )
        assert len(blocked) < len(candidates)

    def test_enumeration_limit(self, two_type_partition):
        region = Rect(0, 0, 1, 1)
        limited = enumerate_free_compatible_areas(two_type_partition, region, limit=3)
        assert len(limited) == 3

    def test_select_disjoint(self):
        candidates = [Rect(0, 0, 2, 2), Rect(1, 0, 2, 2), Rect(4, 0, 2, 2), Rect(4, 2, 2, 2)]
        chosen = select_disjoint_areas(candidates, 3)
        assert len(chosen) == 3
        for i, a in enumerate(chosen):
            for b in chosen[i + 1 :]:
                assert not a.overlaps(b)


class TestRelocationSpec:
    def test_request_validation(self):
        with pytest.raises(ValueError):
            RelocationRequest("A", copies=0)
        with pytest.raises(ValueError):
            RelocationRequest("A", copies=1, weight=0)

    def test_duplicate_requests_rejected(self):
        with pytest.raises(ValueError):
            RelocationSpec([RelocationRequest("A", 1), RelocationRequest("A", 2)])

    def test_constraint_and_metric_constructors(self):
        hard = RelocationSpec.as_constraint({"A": 2})
        soft = RelocationSpec.as_metric({"A": 2}, weights={"A": 3.0})
        assert hard.request_for("A").hard and not soft.request_for("A").hard
        assert soft.request_for("A").weight == 3.0
        assert hard.total_copies == 2 and "A" in hard and len(hard) == 1
        assert hard.has_hard_requests and not soft.has_hard_requests
        assert not RelocationSpec.empty()

    def test_area_naming_matches_paper_convention(self):
        spec = RelocationSpec.as_constraint({"Signal Decoder": 3})
        assert spec.area_name("Signal Decoder", 2) == "Signal Decoder 2"

    def test_build_area_specs(self, tiny_problem):
        spec = RelocationSpec.as_constraint({"beta": 2})
        areas = spec.build_area_specs(tiny_problem)
        assert len(areas) == 2
        assert all(a.compatible_with == "beta" and not a.soft for a in areas)
        assert all(a.requirements.is_zero() for a in areas)
        soft_spec = RelocationSpec.as_metric({"beta": 1})
        assert soft_spec.build_area_specs(tiny_problem)[0].soft

    def test_build_area_specs_validates_region(self, tiny_problem):
        spec = RelocationSpec.as_constraint({"nonexistent": 1})
        with pytest.raises(KeyError):
            spec.build_area_specs(tiny_problem)
