"""Unit coverage for the chaos harness: schedules, invariants, actions.

Everything here runs against stub managers and temp directories — no fleet
processes.  The full experiment loop lives in ``test_chaos_e2e.py``.
"""

import pytest

from repro.chaos import (
    ChaosContext,
    ChaosEvent,
    ChaosPlan,
    CorruptCacheEntry,
    CorruptLockFile,
    FillCacheDir,
    InvariantViolation,
    KillReplica,
    PauseReplica,
    RequestOutcome,
    SlowReplica,
    check_invariants,
    random_plan,
)


class StubManager:
    """Records signals instead of delivering them."""

    def __init__(self) -> None:
        self.calls = []

    def kill_replica(self, index):
        self.calls.append(("kill", index))

    def pause_replica(self, index):
        self.calls.append(("pause", index))

    def resume_replica(self, index):
        self.calls.append(("resume", index))


def make_ctx(tmp_path) -> ChaosContext:
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir(exist_ok=True)
    return ChaosContext(manager=StubManager(), cache_dir=cache_dir)


def outcome(
    offset=0.0, status=200, latency=0.01, headers=None, body="default"
) -> RequestOutcome:
    if body == "default":
        body = {
            "fingerprint": "f" * 64,
            "cached": False,
            "degraded": False,
            "result": {"status": "optimal"},
        }
    return RequestOutcome(offset, status, latency, headers or {}, body)


class TestPlan:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="time"):
            ChaosEvent(-1.0, KillReplica(0))
        with pytest.raises(ValueError, match="duration"):
            ChaosEvent(1.0, PauseReplica(0), duration=0.0)

    def test_events_are_time_ordered_and_horizon_filtered(self):
        plan = ChaosPlan([
            ChaosEvent(5.0, KillReplica(0)),
            ChaosEvent(1.0, PauseReplica(1), duration=0.5),
            ChaosEvent(3.0, KillReplica(1)),
        ])
        assert len(plan) == 3
        times = [event.time for event in plan.events(horizon=4.0)]
        assert times == [1.0, 3.0]  # sorted, and t=5 excluded

    def test_describe_names_every_fault(self):
        plan = ChaosPlan([ChaosEvent(1.5, PauseReplica(1), duration=0.75)])
        assert plan.describe() == ["t=1.50s PauseReplica(1) for 0.75s"]

    def test_random_plan_is_deterministic_per_seed(self):
        first = random_plan(replicas=2, rate=2.0, horizon=10.0, seed=7)
        second = random_plan(replicas=2, rate=2.0, horizon=10.0, seed=7)
        assert first.describe() == second.describe()
        assert len(first) > 0

    def test_random_plan_seeds_differ(self):
        first = random_plan(replicas=2, rate=2.0, horizon=10.0, seed=1)
        second = random_plan(replicas=2, rate=2.0, horizon=10.0, seed=2)
        assert first.describe() != second.describe()

    def test_random_plan_respects_settle(self):
        plan = random_plan(replicas=2, rate=3.0, horizon=10.0, seed=0, settle=2.0)
        assert all(event.time >= 2.0 for event in plan.events(horizon=10.0))

    def test_random_plan_can_exclude_cache_faults(self):
        plan = random_plan(
            replicas=2, rate=5.0, horizon=20.0, seed=0, include_cache_faults=False
        )
        for event in plan.events(horizon=20.0):
            assert isinstance(
                event.action, (KillReplica, PauseReplica, SlowReplica)
            ), event.action.name

    def test_random_plan_validates_replicas(self):
        with pytest.raises(ValueError, match="replicas"):
            random_plan(replicas=0, rate=1.0, horizon=5.0)


class TestInvariants:
    def test_clean_run_has_no_violations(self):
        outcomes = [outcome(offset=i * 0.1) for i in range(10)]
        assert check_invariants(outcomes) == []

    def test_lost_requests_are_flagged(self):
        outcomes = [outcome(), outcome(status=599, body=None)]
        violations = check_invariants(outcomes)
        assert [v.invariant for v in violations] == ["no_request_lost"]
        assert "1 of 2" in violations[0].detail

    def test_corrupt_200_is_flagged(self):
        bad = outcome(body={"fingerprint": "", "result": {"status": "optimal"}})
        weird = outcome(body={"fingerprint": "f" * 64, "result": {"status": "chaos"}})
        violations = check_invariants([outcome(), bad, weird])
        assert [v.invariant for v in violations] == ["no_corrupt_result"]
        assert "2 200-responses" in violations[0].detail

    def test_shed_without_retry_after_is_flagged(self):
        honest = outcome(status=429, headers={"retry-after": "1"}, body={"error": "shed"})
        naked = outcome(status=503, headers={}, body={"error": "shed"})
        violations = check_invariants([honest, naked])
        assert [v.invariant for v in violations] == ["retry_after_on_shed"]
        assert "1x 503" in violations[0].detail

    def test_tail_bound_applies_only_inside_fault_windows(self):
        slow_outside = outcome(offset=0.5, latency=100.0)
        fast_inside = [outcome(offset=2.0 + i * 0.01) for i in range(5)]
        violations = check_invariants(
            [slow_outside] + fast_inside,
            fault_windows=[(1.5, 3.0)],
            p99_bound_s=5.0,
        )
        assert violations == []  # the slow one was sent before the fault

        slow_inside = outcome(offset=2.0, latency=100.0)
        violations = check_invariants(
            [slow_inside], fault_windows=[(1.5, 3.0)], p99_bound_s=5.0
        )
        assert [v.invariant for v in violations] == ["bounded_tail_under_faults"]

    def test_violation_str_is_self_describing(self):
        violation = InvariantViolation("no_request_lost", "3 of 9 died")
        assert str(violation) == "[no_request_lost] 3 of 9 died"


class TestProcessActions:
    def test_kill_pause_slow_signal_the_manager(self, tmp_path):
        ctx = make_ctx(tmp_path)
        KillReplica(1).apply(ctx)
        assert ctx.manager.calls == [("kill", 1)]

        ctx = make_ctx(tmp_path)
        action = PauseReplica(0)
        action.apply(ctx)
        action.revert(ctx)
        assert ctx.manager.calls == [("pause", 0), ("resume", 0)]

    def test_slow_replica_duty_cycles_then_always_resumes(self, tmp_path):
        import time

        ctx = make_ctx(tmp_path)
        action = SlowReplica(0, stall=0.01, period=0.03)
        action.apply(ctx)
        time.sleep(0.1)
        action.revert(ctx)
        pauses = [call for call in ctx.manager.calls if call == ("pause", 0)]
        assert len(pauses) >= 1
        assert ctx.manager.calls[-1] == ("resume", 0)  # never left frozen

    def test_slow_replica_validates_duty_cycle(self):
        with pytest.raises(ValueError, match="stall"):
            SlowReplica(0, stall=0.2, period=0.1)


class TestCacheActions:
    def test_corrupt_cache_entry_round_trip(self, tmp_path):
        ctx = make_ctx(tmp_path)
        victim = ctx.cache_dir / ("a" * 64 + ".json")
        victim.write_text('{"status": "optimal"}')
        action = CorruptCacheEntry()
        action.apply(ctx)
        assert b"chaos" in victim.read_bytes()  # garbage, not JSON
        action.revert(ctx)
        assert not victim.exists()

    def test_corrupt_cache_entry_on_empty_dir_is_a_no_op(self, tmp_path):
        ctx = make_ctx(tmp_path)
        action = CorruptCacheEntry()
        action.apply(ctx)
        action.revert(ctx)
        assert list(ctx.cache_dir.iterdir()) == []

    def test_corrupt_lock_file_prefers_live_locks(self, tmp_path):
        ctx = make_ctx(tmp_path)
        lock = ctx.cache_dir / ("b" * 64 + ".lock")
        lock.write_text('{"pid": 1, "host": "x", "acquired_at": 0}')
        action = CorruptLockFile()
        action.apply(ctx)
        assert b"chaos" in lock.read_bytes()
        action.revert(ctx)
        assert not lock.exists()

    def test_corrupt_lock_file_plants_an_orphan_when_none_exist(self, tmp_path):
        ctx = make_ctx(tmp_path)
        action = CorruptLockFile()
        action.apply(ctx)
        orphan = ctx.cache_dir / f"{CorruptLockFile.ORPHAN_FINGERPRINT}.lock"
        assert orphan.exists()
        action.revert(ctx)
        assert not orphan.exists()

    def test_fill_cache_dir_hijacks_and_restores_the_path(self, tmp_path):
        ctx = make_ctx(tmp_path)
        entry = ctx.cache_dir / ("c" * 64 + ".json")
        entry.write_text("{}")
        action = FillCacheDir()
        action.apply(ctx)
        assert ctx.cache_dir.is_file()  # mkdir/open under it now raise
        with pytest.raises(OSError):
            (ctx.cache_dir / "x.json").write_text("{}")
        action.revert(ctx)
        assert ctx.cache_dir.is_dir()
        assert entry.exists()  # parked contents came back intact
