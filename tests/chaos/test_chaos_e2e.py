"""The chaos acceptance scenario, end to end.

A real two-replica fleet under closed-loop client load; the seeded plan
SIGKILLs one replica mid-run and SIGSTOPs the other while it may hold
single-flight locks.  The run must lose zero client requests, violate zero
invariants, and every shed must carry ``Retry-After``.
"""

import pytest

from repro.chaos import (
    ChaosEvent,
    ChaosPlan,
    CorruptCacheEntry,
    CorruptLockFile,
    FillCacheDir,
    KillReplica,
    PauseReplica,
    run_chaos,
)
from repro.server.loadgen import demo_payloads


class TestChaosAcceptance:
    def test_kill_then_pause_loses_no_requests(self):
        # staggered so the fleet is never fully dark: the kill victim is back
        # (supervisor restart, jittered backoff well under a second) before
        # the surviving replica is frozen
        plan = ChaosPlan([
            ChaosEvent(1.0, KillReplica(0)),
            ChaosEvent(2.5, PauseReplica(1), duration=1.5),
        ])
        report = run_chaos(
            plan,
            replicas=2,
            horizon=5.5,
            clients=3,
            payloads=demo_payloads(unique=2, time_limit=20.0),
        )
        assert report.ok, report.format_report()
        assert report.sent > 0
        counts = report.status_counts()
        assert counts.get(599, 0) == 0  # zero failed client requests
        assert counts.get(200, 0) > 0  # the fleet kept answering
        assert report.restarts >= 1  # the killed replica was resurrected
        assert [name for _when, name in report.applied] == [
            "KillReplica(0)", "PauseReplica(1)",
        ]
        assert report.fault_windows  # the pause window was recorded
        # every shed that occurred carried Retry-After: implied by report.ok,
        # restated here because it is an acceptance bullet of its own
        for outcome in report.outcomes:
            if outcome.status in (429, 503, 504):
                assert "retry-after" in outcome.headers

    def test_cache_torture_never_serves_corruption(self):
        plan = ChaosPlan([
            ChaosEvent(1.0, CorruptCacheEntry()),
            ChaosEvent(1.5, CorruptLockFile()),
            ChaosEvent(2.0, FillCacheDir(), duration=1.0),
        ])
        report = run_chaos(
            plan,
            replicas=1,
            horizon=4.0,
            clients=2,
            payloads=demo_payloads(unique=2, time_limit=20.0),
        )
        assert report.ok, report.format_report()
        assert report.status_counts().get(200, 0) > 0
        # the report round-trips to JSON-clean primitives for the CLI
        document = report.as_dict()
        assert document["verdict"] == "PASS"
        assert document["requests"] == report.sent


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-v"]))
