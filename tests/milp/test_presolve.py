"""Unit tests of the MILP presolve reductions and the postsolve mapping."""

import numpy as np
import pytest

from repro.milp import (
    Model,
    PresolveStatus,
    SolveStatus,
    SolverOptions,
    presolve,
    prepare_model,
    solve,
    split_matrix_form,
)


def _reduced_model() -> Model:
    """A model exercising every reduction at once."""
    model = Model("reductions")
    x = model.add_integer("x", lb=0, ub=10)
    y = model.add_integer("y", lb=0, ub=10)
    z = model.add_continuous("z", lb=2, ub=2)  # fixed
    model.add(x <= 7.5, name="singleton")
    model.add(x + y <= 12, name="pair")
    model.add(x + y <= 12, name="pair_dup")
    model.add(x + y <= 100, name="redundant")
    model.add(x + y + z >= 3, name="with_fixed")
    model.minimize(-2 * x - y + z)
    return model


class TestReductions:
    def test_summary_counts(self):
        result = presolve(_reduced_model().to_matrix_form())
        assert result.status is PresolveStatus.REDUCED
        stats = result.stats
        assert stats.variables_fixed == 1  # z
        assert stats.singleton_rows == 1
        # "pair_dup" duplicates "pair"; "with_fixed" collapses onto it too
        # once the fixed z is substituted out
        assert stats.duplicate_rows == 2
        assert stats.redundant_rows >= 1
        assert stats.rows_after < stats.rows_before
        assert stats.cols_after == 2
        assert "presolve:" in stats.summary()

    def test_singleton_row_tightens_bound(self):
        result = presolve(_reduced_model().to_matrix_form())
        # x <= 7.5 rounds to x <= 7 through integer bound tightening
        x_pos = [v.name for v in result.reduced.variables].index("x")
        assert result.reduced.var_ub[x_pos] == 7.0

    def test_integer_bound_rounding(self):
        model = Model()
        model.add_integer("x", lb=0.4, ub=8.7)
        model.minimize(model.variable_by_name("x"))
        result = presolve(model.to_matrix_form())
        assert result.reduced.var_lb[0] == 1.0
        assert result.reduced.var_ub[0] == 8.0

    def test_infeasible_bounds_detected(self):
        model = Model()
        x = model.add_integer("x", lb=0, ub=5)
        model.add(x >= 3)
        model.add(x <= 2)
        model.minimize(x)
        result = presolve(model.to_matrix_form())
        assert result.status is PresolveStatus.INFEASIBLE

    def test_duplicate_rows_with_empty_intersection(self):
        model = Model()
        x = model.add_continuous("x", lb=0, ub=10)
        y = model.add_continuous("y", lb=0, ub=10)
        model.add(x + y <= 3)
        model.add(x + y >= 8)
        model.minimize(x)
        result = presolve(model.to_matrix_form())
        assert result.status is PresolveStatus.INFEASIBLE

    def test_all_variables_fixed_solves_model(self):
        model = Model()
        x = model.add_integer("x", lb=4, ub=4)
        y = model.add_continuous("y", lb=1.5, ub=1.5)
        model.add(x + y <= 6)
        model.minimize(x + 2 * y)
        result = presolve(model.to_matrix_form())
        assert result.status is PresolveStatus.SOLVED
        values = result.fixed_only_values()
        assert values[x] == 4.0
        assert values[y] == pytest.approx(1.5)

    def test_fixed_point_violating_constraints_is_infeasible(self):
        model = Model()
        x = model.add_integer("x", lb=4, ub=4)
        model.add(x <= 3)
        model.minimize(x)
        prepared = prepare_model(model)
        assert prepared.shortcut is not None
        assert prepared.shortcut.status is SolveStatus.INFEASIBLE


class TestRoundTrip:
    def test_roundtrip_restores_original_space(self):
        """Fast presolve round-trip: reduce, solve, map back, re-verify."""
        model = _reduced_model()
        form = model.to_matrix_form()
        result = presolve(form)

        solution = solve(model, SolverOptions(presolve=True))
        raw = solve(model, SolverOptions(presolve=False))
        assert solution.status is raw.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(raw.objective, abs=1e-6)
        # every original variable is present and the assignment is feasible
        assert len(solution.values) == len(form.variables)
        assert model.check_assignment(solution.values) == []

        # restoring an arbitrary reduced point keeps the fixed values exact
        reduced_x = np.zeros(result.reduced.num_variables)
        full = result.restore(reduced_x)
        z_index = [v.name for v in form.variables].index("z")
        assert full[z_index] == pytest.approx(2.0)

    def test_objective_offset_matches_fixed_contribution(self):
        model = _reduced_model()
        result = presolve(model.to_matrix_form())
        # objective term of the fixed z (coefficient +1, value 2)
        assert result.objective_offset == pytest.approx(2.0)
        assert result.restore_objective(5.0) == pytest.approx(7.0)


class TestSharedGlue:
    def test_split_matrix_form_blocks(self):
        model = Model()
        x = model.add_continuous("x", lb=0, ub=4)
        y = model.add_continuous("y", lb=0, ub=4)
        model.add(x + y <= 5)
        model.add(x - y >= -2)
        model.add(x + 2 * y == 3)
        split = split_matrix_form(model.to_matrix_form())
        assert split.a_ub.shape == (2, 2)
        assert split.a_eq.shape == (1, 2)
        assert np.allclose(split.b_ub, [5.0, 2.0])
        assert np.allclose(split.b_eq, [3.0])

    def test_dense_flag_matches_sparse_lowering(self):
        model = _reduced_model()
        sparse_form = model.to_matrix_form()
        dense_form = model.to_matrix_form(dense=True)
        assert sparse_form.is_sparse and not dense_form.is_sparse
        assert np.allclose(
            dense_form.constraint_matrix, sparse_form.constraint_matrix.toarray()
        )
        assert np.array_equal(dense_form.constraint_lb, sparse_form.constraint_lb)
        assert np.array_equal(dense_form.constraint_ub, sparse_form.constraint_ub)
        assert np.array_equal(dense_form.integrality, sparse_form.integrality)
        # presolve accepts the dense form by converting it
        assert presolve(dense_form).status is PresolveStatus.REDUCED

    def test_prepare_model_charges_time_budget(self):
        from repro.milp.branch_bound import solve_with_branch_bound
        from repro.milp.scipy_backend import solve_with_scipy

        model = _reduced_model()
        for backend in (solve_with_branch_bound, solve_with_scipy):
            result = backend(model, time_limit=0.0)
            assert result.status is SolveStatus.TIME_LIMIT
            assert "presolve" in result.message or "gap" in result.message

    def test_solution_carries_presolve_stats_and_gap(self):
        model = _reduced_model()
        result = solve(model, SolverOptions(backend="branch-bound"))
        assert result.status is SolveStatus.OPTIMAL
        assert result.presolve_stats is not None
        assert result.presolve_stats.variables_fixed == 1
        assert result.gap == pytest.approx(0.0, abs=1e-9)
