"""Unit tests for the Model container and both MILP backends."""

import math

import numpy as np
import pytest

from repro.milp import (
    Model,
    MILPSolution,
    SolveStatus,
    SolverOptions,
    quicksum,
    solve,
)

BACKENDS = ["highs", "branch-bound"]


class TestModel:
    def test_duplicate_variable_name_rejected(self):
        model = Model()
        model.add_var("x")
        with pytest.raises(ValueError):
            model.add_var("x")

    def test_variable_lookup_by_name(self):
        model = Model()
        x = model.add_integer("x", lb=1, ub=3)
        assert model.variable_by_name("x") is x

    def test_add_requires_constraint(self):
        model = Model()
        with pytest.raises(TypeError):
            model.add("not a constraint")

    def test_stats_counts(self):
        model = Model()
        x = model.add_integer("x", ub=4)
        y = model.add_binary("y")
        z = model.add_continuous("z", ub=1)
        model.add(x + y + z <= 3)
        model.add(x - y >= 0)
        stats = model.stats()
        assert stats.num_variables == 3
        assert stats.num_binary == 1
        assert stats.num_integer == 1
        assert stats.num_continuous == 1
        assert stats.num_constraints == 2
        assert stats.num_nonzeros == 5

    def test_matrix_form_shapes(self):
        model = Model()
        x = model.add_integer("x", ub=4)
        y = model.add_continuous("y", ub=2)
        model.add(x + 2 * y <= 4)
        model.add(x - y == 1)
        model.minimize(x + y)
        form = model.to_matrix_form()
        assert form.constraint_matrix.shape == (2, 2)
        assert form.integrality.tolist() == [1, 0]
        assert np.isinf(form.constraint_lb[0]) and form.constraint_ub[0] == 4
        assert form.constraint_lb[1] == form.constraint_ub[1] == 1

    def test_maximize_is_negated_in_matrix_form(self):
        model = Model()
        x = model.add_continuous("x", ub=5)
        model.maximize(x)
        form = model.to_matrix_form()
        assert form.objective[0] == -1.0

    def test_check_assignment_detects_violations(self):
        model = Model()
        x = model.add_integer("x", lb=0, ub=3)
        model.add(x <= 2, name="cap")
        assert model.check_assignment({x: 2.0}) == []
        violated = model.check_assignment({x: 3.0})
        assert any(c.name == "cap" for c in violated)
        fractional = model.check_assignment({x: 1.5})
        assert any("integrality" in (c.name or "") for c in fractional)

    def test_lp_export_mentions_sections(self):
        model = Model("export")
        x = model.add_integer("x", ub=2)
        y = model.add_binary("y")
        model.add(x + y <= 2, name="c0")
        model.minimize(x)
        text = model.to_lp_string()
        for token in ("Minimize", "Subject To", "Bounds", "General", "Binary", "c0"):
            assert token in text


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackends:
    def test_simple_integer_program(self, backend):
        model = Model()
        x = model.add_integer("x", lb=0, ub=10)
        y = model.add_integer("y", lb=0, ub=10)
        model.add(x + y <= 7)
        model.add(x - y <= 2)
        model.maximize(2 * x + y)
        result = solve(model, SolverOptions(backend=backend))
        assert result.status is SolveStatus.OPTIMAL
        # optimum: x=4.5 not allowed; integral optimum x=4,y=3 -> 11
        assert result.objective == pytest.approx(11.0)
        assert result.value_int(x) + result.value_int(y) <= 7

    def test_infeasible_detected(self, backend):
        model = Model()
        x = model.add_integer("x", lb=0, ub=5)
        model.add(x >= 3)
        model.add(x <= 2)
        model.minimize(x)
        result = solve(model, SolverOptions(backend=backend))
        assert result.status is SolveStatus.INFEASIBLE
        assert not result.status.has_solution

    def test_binary_knapsack(self, backend):
        values = [10, 13, 7, 8]
        weights = [3, 4, 2, 3]
        model = Model()
        picks = [model.add_binary(f"p{i}") for i in range(4)]
        model.add(quicksum(w * p for w, p in zip(weights, picks)) <= 6)
        model.maximize(quicksum(v * p for v, p in zip(values, picks)))
        result = solve(model, SolverOptions(backend=backend))
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(20.0)  # items 1 and 2 (13 + 7)

    def test_continuous_lp(self, backend):
        model = Model()
        x = model.add_continuous("x", lb=0)
        y = model.add_continuous("y", lb=0)
        model.add(x + y >= 4)
        model.add(x + 3 * y >= 6)
        model.minimize(2 * x + 3 * y)
        result = solve(model, SolverOptions(backend=backend))
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(9.0, abs=1e-5)

    def test_equality_constraints(self, backend):
        model = Model()
        x = model.add_integer("x", lb=0, ub=10)
        y = model.add_integer("y", lb=0, ub=10)
        model.add(x + y == 6)
        model.minimize(x - y)
        result = solve(model, SolverOptions(backend=backend))
        assert result.status is SolveStatus.OPTIMAL
        assert result.value_int(x) + result.value_int(y) == 6
        assert result.objective == pytest.approx(-6.0)

    def test_empty_model(self, backend):
        model = Model()
        result = solve(model, SolverOptions(backend=backend))
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(0.0)


class TestSolutionObject:
    def test_value_lookup_and_default(self):
        model = Model()
        x = model.add_integer("x", ub=3)
        model.maximize(x)
        result = solve(model)
        assert result.value(x) == pytest.approx(3.0)
        y = model.add_integer("y", ub=1)
        assert result.value(y, default=0.5) == 0.5
        with pytest.raises(KeyError):
            result.value(y)

    def test_gap_and_bool(self):
        result = MILPSolution(status=SolveStatus.OPTIMAL, objective=10.0, bound=10.0)
        assert result.gap == pytest.approx(0.0)
        assert bool(result)
        empty = MILPSolution(status=SolveStatus.INFEASIBLE)
        assert not bool(empty)
        assert math.isinf(empty.gap)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            solve(Model(), SolverOptions(backend="cplex"))
