"""Unit tests for the affine-expression layer."""

import pytest

from repro.milp import Constraint, Model, Sense, quicksum
from repro.milp.expr import as_expr


@pytest.fixture()
def variables():
    model = Model("expr-test")
    x = model.add_integer("x", lb=0, ub=10)
    y = model.add_continuous("y", lb=0, ub=5)
    z = model.add_binary("z")
    return model, x, y, z


class TestVariable:
    def test_binary_bounds_are_clamped(self, variables):
        _, _, _, z = variables
        assert z.lb == 0.0 and z.ub == 1.0

    def test_integrality_flags(self, variables):
        _, x, y, z = variables
        assert x.is_integral and z.is_integral and not y.is_integral

    def test_unbounded_upper(self):
        model = Model()
        v = model.add_continuous("free", lb=None, ub=None)
        assert v.lb == float("-inf") and v.ub == float("inf")

    def test_repr_contains_name(self, variables):
        _, x, _, _ = variables
        assert "x" in repr(x)


class TestLinExprArithmetic:
    def test_add_variables(self, variables):
        _, x, y, _ = variables
        expr = x + y
        assert expr.coefficient(x) == 1.0 and expr.coefficient(y) == 1.0

    def test_scalar_multiplication(self, variables):
        _, x, _, _ = variables
        expr = 3 * x
        assert expr.coefficient(x) == 3.0

    def test_subtraction_and_constant(self, variables):
        _, x, y, _ = variables
        expr = 2 * x - y + 7
        assert expr.coefficient(x) == 2.0
        assert expr.coefficient(y) == -1.0
        assert expr.constant == 7.0

    def test_negation(self, variables):
        _, x, _, _ = variables
        expr = -(x + 1)
        assert expr.coefficient(x) == -1.0 and expr.constant == -1.0

    def test_rsub(self, variables):
        _, x, _, _ = variables
        expr = 10 - x
        assert expr.constant == 10.0 and expr.coefficient(x) == -1.0

    def test_division(self, variables):
        _, x, _, _ = variables
        expr = (4 * x) / 2
        assert expr.coefficient(x) == 2.0

    def test_multiplying_two_expressions_is_rejected(self, variables):
        _, x, y, _ = variables
        with pytest.raises(TypeError):
            (x + 1) * (y + 1)  # nonlinear

    def test_evaluate(self, variables):
        _, x, y, _ = variables
        expr = 2 * x + 3 * y - 1
        assert expr.evaluate({x: 2.0, y: 1.0}) == pytest.approx(6.0)

    def test_quicksum_matches_repeated_add(self, variables):
        _, x, y, z = variables
        direct = x + y + z + 4
        quick = quicksum([x, y, z, 4])
        values = {x: 1.0, y: 2.0, z: 1.0}
        assert direct.evaluate(values) == quick.evaluate(values)

    def test_quicksum_empty(self):
        expr = quicksum([])
        assert expr.is_constant() and expr.constant == 0.0

    def test_as_expr_round_trip(self, variables):
        _, x, _, _ = variables
        assert as_expr(x).coefficient(x) == 1.0
        assert as_expr(5).constant == 5.0
        with pytest.raises(TypeError):
            as_expr("nope")

    def test_copy_is_independent(self, variables):
        _, x, _, _ = variables
        original = x + 1
        clone = original.copy()
        clone._iadd(x, 1.0)
        assert original.coefficient(x) == 1.0
        assert clone.coefficient(x) == 2.0


class TestComparisonsBuildConstraints:
    def test_le_builds_constraint(self, variables):
        _, x, y, _ = variables
        constraint = x + y <= 4
        assert isinstance(constraint, Constraint)
        assert constraint.sense is Sense.LE
        assert constraint.rhs == pytest.approx(4.0)

    def test_ge_builds_constraint(self, variables):
        _, x, _, _ = variables
        constraint = x >= 2
        assert constraint.sense is Sense.GE

    def test_eq_builds_constraint(self, variables):
        _, x, y, _ = variables
        constraint = x == y
        assert constraint.sense is Sense.EQ
        assert constraint.coefficient(x) == 1.0 and constraint.coefficient(y) == -1.0

    def test_violation_measurement(self, variables):
        _, x, _, _ = variables
        constraint = x <= 3
        assert constraint.violation({x: 5.0}) == pytest.approx(2.0)
        assert constraint.violation({x: 2.0}) == 0.0
        assert constraint.is_satisfied({x: 3.0})

    def test_eq_violation_is_absolute(self, variables):
        _, x, _, _ = variables
        constraint = x == 2
        assert constraint.violation({x: 0.0}) == pytest.approx(2.0)
        assert constraint.violation({x: 4.0}) == pytest.approx(2.0)
