"""Unit tests for frame addressing, CRC, bitstreams and the relocation filter."""

import dataclasses
import random

import pytest

from repro.bitstream import (
    ConfigurationMemory,
    FrameAddress,
    RelocationError,
    area_frame_addresses,
    crc32,
    generate_bitstream,
    relocate_bitstream,
)
from repro.bitstream.bitstream import WORDS_PER_FRAME
from repro.bitstream.crc import crc32_of_words, crc32_reference
from repro.bitstream.frames import frame_count
from repro.bitstream.memory import ConfigurationError
from repro.floorplan import Rect


class TestCrc:
    def test_known_vector(self):
        # standard CRC-32 check value
        assert crc32(b"123456789") == 0xCBF43926

    def test_empty_and_incremental(self):
        assert crc32(b"") == 0
        assert crc32(b"abcdef") != crc32(b"abcdeg")

    def test_word_helper(self):
        assert crc32_of_words([1, 2, 3]) == crc32(
            (1).to_bytes(4, "little") + (2).to_bytes(4, "little") + (3).to_bytes(4, "little")
        )

    def test_fast_path_matches_reference(self):
        rng = random.Random(42)
        for size in (0, 1, 7, 64, 1000):
            data = bytes(rng.randrange(256) for _ in range(size))
            assert crc32(data) == crc32_reference(data)

    def test_fast_path_matches_reference_when_chained(self):
        rng = random.Random(7)
        data = bytes(rng.randrange(256) for _ in range(512))
        partial_fast = crc32(data[:200])
        partial_ref = crc32_reference(data[:200])
        assert partial_fast == partial_ref
        assert crc32(data[200:], partial_fast) == crc32_reference(data[200:], partial_ref)
        assert crc32(data[200:], partial_fast) == crc32(data)


class TestFrameAddresses:
    def test_area_frame_addresses_counts(self, two_type_device):
        rect = Rect(3, 0, 3, 2)  # 4 CLB + 2 BRAM tiles
        addresses = area_frame_addresses(two_type_device, rect)
        assert len(addresses) == 4 * 36 + 2 * 30
        assert frame_count(two_type_device, rect) == len(addresses)
        assert len(set(addresses)) == len(addresses)

    def test_translation(self):
        address = FrameAddress(3, 1, 7, "CLB")
        moved = address.translated(2, -1)
        assert (moved.col, moved.row, moved.minor) == (5, 0, 7)

    def test_packing_uniqueness_and_limits(self, two_type_device):
        rect = Rect(0, 0, 2, 2)
        addresses = area_frame_addresses(two_type_device, rect)
        packed = {a.packed(two_type_device.width, two_type_device.height) for a in addresses}
        assert len(packed) == len(addresses)
        with pytest.raises(ValueError):
            FrameAddress(0, 0, 99, "CLB").packed(10, 10, max_minor=64)


class TestBitstreamGeneration:
    def test_deterministic_for_same_module(self, two_type_device):
        a = generate_bitstream(two_type_device, Rect(0, 0, 2, 2), "modA")
        b = generate_bitstream(two_type_device, Rect(0, 0, 2, 2), "modA")
        assert a.frames == b.frames and a.crc == b.crc

    def test_different_modules_differ(self, two_type_device):
        a = generate_bitstream(two_type_device, Rect(0, 0, 2, 2), "modA")
        b = generate_bitstream(two_type_device, Rect(0, 0, 2, 2), "modB")
        assert a.frames != b.frames

    def test_crc_detects_corruption(self, two_type_device):
        bitstream = generate_bitstream(two_type_device, Rect(0, 0, 2, 1), "modA")
        assert bitstream.is_crc_valid()
        address = next(iter(bitstream.frames))
        corrupted = dict(bitstream.frames)
        payload = list(corrupted[address])
        payload[0] ^= 1
        corrupted[address] = tuple(payload)
        tampered = dataclasses.replace(bitstream, frames=corrupted)
        assert not tampered.is_crc_valid()

    def test_frames_are_immutable(self, two_type_device):
        # in-place tampering must raise, not silently invalidate the cached CRC
        bitstream = generate_bitstream(two_type_device, Rect(0, 0, 1, 1), "modA")
        address = next(iter(bitstream.frames))
        with pytest.raises(TypeError):
            bitstream.frames[address] = tuple([0] * WORDS_PER_FRAME)

    def test_size_accounting(self, two_type_device):
        bitstream = generate_bitstream(two_type_device, Rect(0, 0, 1, 1), "modA")
        assert bitstream.num_frames == 36
        assert bitstream.size_words == 36 * WORDS_PER_FRAME

    def test_forbidden_or_out_of_bounds_rejected(self, fx70t_device):
        with pytest.raises(ValueError):
            generate_bitstream(fx70t_device, Rect(13, 3, 1, 1), "bad")  # PPC block
        with pytest.raises(ValueError):
            generate_bitstream(fx70t_device, Rect(32, 7, 2, 2), "bad")


class TestRelocationFilter:
    def test_relocation_preserves_payload_and_updates_crc(self, two_type_device, two_type_partition):
        source = generate_bitstream(two_type_device, Rect(3, 0, 3, 2), "modA")
        relocated = relocate_bitstream(source, Rect(8, 3, 3, 2), two_type_device, two_type_partition)
        assert relocated.is_crc_valid()
        assert relocated.crc != source.crc
        assert relocated.num_frames == source.num_frames
        assert relocated.block_type_signature() == source.block_type_signature()
        assert sorted(relocated.frames.values()) == sorted(source.frames.values())

    def test_incompatible_target_rejected(self, two_type_device, two_type_partition):
        source = generate_bitstream(two_type_device, Rect(3, 0, 3, 2), "modA")
        with pytest.raises(RelocationError):
            relocate_bitstream(source, Rect(4, 0, 3, 2), two_type_device, two_type_partition)

    def test_shape_mismatch_rejected(self, two_type_device, two_type_partition):
        source = generate_bitstream(two_type_device, Rect(0, 0, 2, 2), "modA")
        with pytest.raises(RelocationError):
            relocate_bitstream(source, Rect(0, 2, 2, 3), two_type_device, two_type_partition)

    def test_occupied_target_rejected(self, two_type_device, two_type_partition):
        source = generate_bitstream(two_type_device, Rect(0, 0, 2, 2), "modA")
        with pytest.raises(RelocationError):
            relocate_bitstream(
                source, Rect(0, 2, 2, 2), two_type_device, two_type_partition,
                occupied=[Rect(1, 3, 2, 2)],
            )

    def test_forbidden_target_rejected(self, fx70t_device):
        source = generate_bitstream(fx70t_device, Rect(0, 0, 3, 3), "modA")
        with pytest.raises(RelocationError):
            relocate_bitstream(source, Rect(12, 3, 3, 3), fx70t_device)


class TestConfigurationMemory:
    def test_load_verify_unload(self, two_type_device):
        memory = ConfigurationMemory("dev")
        bitstream = generate_bitstream(two_type_device, Rect(0, 0, 2, 2), "modA")
        memory.load(bitstream)
        assert memory.verify(bitstream)
        assert memory.loaded_modules() == ["modA"]
        assert memory.configured_frame_count == bitstream.num_frames
        assert memory.unload("modA") == bitstream.num_frames
        assert memory.loaded_modules() == []

    def test_crc_checked_on_load(self, two_type_device):
        memory = ConfigurationMemory()
        bitstream = generate_bitstream(two_type_device, Rect(0, 0, 1, 1), "modA")
        bitstream.crc ^= 0xFF
        with pytest.raises(ConfigurationError):
            memory.load(bitstream)

    def test_conflicting_writes_rejected_without_overwrite(self, two_type_device):
        memory = ConfigurationMemory()
        a = generate_bitstream(two_type_device, Rect(0, 0, 2, 2), "modA")
        b = generate_bitstream(two_type_device, Rect(1, 1, 2, 2), "modB")
        memory.load(a)
        with pytest.raises(ConfigurationError):
            memory.load(b)
        memory.load(b, allow_overwrite=True)
        assert set(memory.loaded_modules()) == {"modA", "modB"}

    def test_readback_and_ownership(self, two_type_device):
        memory = ConfigurationMemory()
        bitstream = generate_bitstream(two_type_device, Rect(0, 0, 1, 1), "modA")
        memory.load(bitstream)
        address = next(iter(bitstream.frames))
        assert memory.owner_of(address) == "modA"
        data = memory.readback([address])
        assert data[address] == bitstream.frames[address]
