"""Property tests: vectorized traffic generation vs. per-event references.

The vectorized generators must be drop-in replacements for the per-event
loops they replaced.  For homogeneous Poisson gap-sampling the batched numpy
path consumes the exact same seeded draws in the same order, so the request
streams are *identical*; for the inversion/order-statistics paths
(homogeneous inversion, inhomogeneous IPPP inversion, per-phase MMPP
regeneration) the draws differ but the distribution must not, which a
fixed-seed two-sample Kolmogorov–Smirnov check and per-window counts pin.
"""

import numpy as np
import pytest

from repro.sim import (
    InhomogeneousPoissonTraffic,
    MMPPTraffic,
    PoissonTraffic,
    poisson_times,
    sinusoidal_rate,
)
from repro.utils.rng import make_rng

REGIONS = ["A", "B", "C"]


def ks_statistic(sample_a, sample_b) -> float:
    """Two-sample Kolmogorov–Smirnov D statistic (no scipy dependency)."""
    a = np.sort(np.asarray(sample_a, dtype=float))
    b = np.sort(np.asarray(sample_b, dtype=float))
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / len(a)
    cdf_b = np.searchsorted(b, grid, side="right") / len(b)
    return float(np.max(np.abs(cdf_a - cdf_b)))


def ks_threshold(n: int, m: int, alpha_coefficient: float = 1.63) -> float:
    """Critical value c(α)·sqrt((n+m)/(n·m)); 1.63 ≈ α = 0.01."""
    return alpha_coefficient * ((n + m) / (n * m)) ** 0.5


class TestHomogeneousPoissonIdenticalStreams:
    @pytest.mark.parametrize("seed", [0, 1, 7, 1234])
    def test_vectorized_equals_per_event_stream(self, seed):
        traffic = PoissonTraffic(REGIONS, rate=8.0, modes_per_region=4, seed=seed)
        assert traffic.generate(60.0) == traffic.generate_reference(60.0)

    def test_single_region_single_mode(self):
        traffic = PoissonTraffic(["only"], rate=2.0, modes_per_region=1, seed=3)
        assert traffic.generate(25.0) == traffic.generate_reference(25.0)

    def test_fault_poisson_times_match_scalar_loop(self):
        # poisson_times feeds RandomFaults and the chaos planner: the batched
        # generator must reproduce the scalar gap loop draw for draw
        for seed in (0, 5, 99):
            rng = make_rng(seed)
            expected = []
            time = float(rng.exponential(1.0 / 3.0))
            while time < 40.0:
                expected.append(time)
                time += float(rng.exponential(1.0 / 3.0))
            assert poisson_times(3.0, 40.0, seed=seed) == expected

    def test_inversion_method_distribution(self):
        # inversion draws a different stream but the same law: compare its
        # arrival times against gap-sampling KS-style at a fixed seed
        gap = PoissonTraffic(REGIONS, rate=10.0, seed=11).generate(300.0)
        inv = PoissonTraffic(REGIONS, rate=10.0, seed=11, method="inversion").generate(300.0)
        times_gap = [request.time for request in gap]
        times_inv = [request.time for request in inv]
        assert ks_statistic(times_gap, times_inv) < ks_threshold(
            len(times_gap), len(times_inv)
        )
        # counts agree within Poisson noise (±4 sigma around rate*T = 3000)
        assert abs(len(gap) - len(inv)) < 8 * (3000**0.5)

    def test_inversion_sorted_and_reproducible(self):
        traffic = PoissonTraffic(REGIONS, rate=5.0, seed=2, method="inversion")
        a, b = traffic.generate(50.0), traffic.generate(50.0)
        assert a == b
        times = [request.time for request in a]
        assert times == sorted(times)
        assert all(0.0 <= time < 50.0 for time in times)


class TestInhomogeneousPoissonDistribution:
    HORIZON = 240.0

    def _pair(self, seed):
        rate = sinusoidal_rate(base=6.0, amplitude=4.0, period=60.0)
        traffic = InhomogeneousPoissonTraffic(REGIONS, rate, rate_max=10.0, seed=seed)
        return traffic.generate(self.HORIZON), traffic.generate_reference(self.HORIZON)

    def test_ks_against_thinning_reference(self):
        inversion, thinning = self._pair(seed=5)
        times_inv = [request.time for request in inversion]
        times_thin = [request.time for request in thinning]
        assert ks_statistic(times_inv, times_thin) < ks_threshold(
            len(times_inv), len(times_thin)
        )

    def test_window_counts_track_reference(self):
        inversion, thinning = self._pair(seed=9)
        edges = np.linspace(0.0, self.HORIZON, 9)  # 8 windows of 30 s
        counts_inv, _ = np.histogram([r.time for r in inversion], bins=edges)
        counts_thin, _ = np.histogram([r.time for r in thinning], bins=edges)
        for inv, thin in zip(counts_inv, counts_thin):
            # each window holds ~180 expected arrivals; allow 4-sigma noise
            assert abs(int(inv) - int(thin)) < 4 * max(inv, thin, 1) ** 0.5

    def test_inversion_validates_rate_bounds(self):
        traffic = InhomogeneousPoissonTraffic(
            REGIONS, rate_fn=lambda t: 100.0, rate_max=1.0, seed=0
        )
        with pytest.raises(ValueError):
            traffic.generate(10.0)


class TestMMPPDistribution:
    def test_phase_boundaries_shared_with_reference(self):
        traffic = MMPPTraffic(REGIONS, rates=(2.0, 20.0), mean_sojourns=(8.0, 2.0), seed=6)
        segments = traffic.phase_segments(100.0)
        assert segments[0][0] == 0.0
        assert segments[-1][1] == 100.0
        for (_, end, state), (start, _, next_state) in zip(segments, segments[1:]):
            assert start == end
            assert next_state == 1 - state

    def test_ks_against_per_event_reference(self):
        traffic = MMPPTraffic(
            REGIONS, rates=(3.0, 30.0), mean_sojourns=(10.0, 3.0), seed=4
        )
        vectorized = [r.time for r in traffic.generate(300.0)]
        reference = [r.time for r in traffic.generate_reference(300.0)]
        assert ks_statistic(vectorized, reference) < ks_threshold(
            len(vectorized), len(reference)
        )

    def test_per_phase_counts_match_reference_within_noise(self):
        traffic = MMPPTraffic(
            REGIONS, rates=(2.0, 25.0), mean_sojourns=(12.0, 4.0), seed=8
        )
        vectorized = np.array([r.time for r in traffic.generate(200.0)])
        reference = np.array([r.time for r in traffic.generate_reference(200.0)])
        for start, end, state in traffic.phase_segments(200.0):
            expected = traffic.rates[state] * (end - start)
            got_vec = int(np.sum((vectorized >= start) & (vectorized < end)))
            got_ref = int(np.sum((reference >= start) & (reference < end)))
            slack = 5 * max(expected, 1.0) ** 0.5 + 1
            assert abs(got_vec - expected) < slack
            assert abs(got_ref - expected) < slack

    def test_vectorized_sorted_within_horizon(self):
        traffic = MMPPTraffic(REGIONS, seed=1)
        requests = traffic.generate(150.0)
        times = [request.time for request in requests]
        assert times == sorted(times)
        assert all(0.0 <= time < 150.0 for time in times)
