"""Tests of fault plans, fault-masked problems and the statistics layer."""

import pytest

from repro.device.resources import ResourceVector
from repro.floorplan.geometry import Rect
from repro.floorplan.problem import FloorplanProblem, Region
from repro.sim import (
    RandomFaults,
    RequestRecord,
    ScheduledFaults,
    SimStats,
    fault_masked_problem,
    histogram,
    percentile,
)


class TestFaultPlans:
    def test_scheduled_faults_sorted_and_truncated(self):
        plan = ScheduledFaults([(5.0, "B"), (1.0, "A")])
        events = plan.events(horizon=10.0)
        assert [(event.time, event.region) for event in events] == [
            (1.0, "A"),
            (5.0, "B"),
        ]
        assert [event.region for event in plan.events(horizon=2.0)] == ["A"]

    def test_scheduled_faults_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ScheduledFaults([(-1.0, "A")])

    def test_random_faults_reproducible(self):
        a = RandomFaults(["A", "B"], rate=0.5, seed=6).events(100.0)
        b = RandomFaults(["A", "B"], rate=0.5, seed=6).events(100.0)
        assert a == b
        assert all(event.time < 100.0 for event in a)

    def test_random_faults_validation(self):
        with pytest.raises(ValueError):
            RandomFaults([], rate=1.0)
        with pytest.raises(ValueError):
            RandomFaults(["A"], rate=0.0)


class TestFaultMaskedProblem:
    def test_faults_become_forbidden_fabric(self, small_device):
        problem = FloorplanProblem(
            small_device, [Region("R", ResourceVector(CLB=2))], name="mask"
        )
        masked = fault_masked_problem(problem, [Rect(0, 0, 2, 2)])
        assert masked.device.is_forbidden(0, 0)
        assert masked.device.is_forbidden(1, 1)
        assert not masked.device.is_forbidden(3, 3)
        # original device untouched
        assert not problem.device.is_forbidden(0, 0)
        assert masked.regions == problem.regions

    def test_no_faults_returns_the_same_problem(self, small_device):
        problem = FloorplanProblem(
            small_device, [Region("R", ResourceVector(CLB=2))], name="mask"
        )
        assert fault_masked_problem(problem, []) is problem

    def test_successive_masking_does_not_compound(self, small_device):
        problem = FloorplanProblem(
            small_device, [Region("R", ResourceVector(CLB=2))], name="mask"
        )
        first = fault_masked_problem(problem, [Rect(0, 0, 1, 1)])
        # re-masking with the same fault is a no-op
        assert fault_masked_problem(first, [Rect(0, 0, 1, 1)]) is first
        # a second fault extends the mask without duplicating the first
        second = fault_masked_problem(first, [Rect(0, 0, 1, 1), Rect(3, 3, 1, 1)])
        names = [rect.name for rect in second.device.forbidden]
        assert sorted(names) == ["fault0", "fault1"]
        assert second.device.name == f"{small_device.name}+2faults"
        assert second.name == "mask+faultmask"


class TestPercentileAndHistogram:
    def test_nearest_rank_percentiles(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 50) == 50
        assert percentile(values, 90) == 90
        assert percentile(values, 99) == 99
        assert percentile([7.0], 99) == 7.0

    def test_percentile_of_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_presorted_shares_one_sort(self):
        values = [9.0, 1.0, 5.0, 3.0, 7.0]
        ordered = sorted(values)
        for pct in (50, 90, 99):
            assert percentile(ordered, pct, presorted=True) == percentile(values, pct)

    def test_histogram_bins_cover_all_values(self):
        bins = histogram([0.1, 0.6, 0.9, 1.0], bins=2, upper=1.0)
        assert len(bins) == 2
        assert sum(count for _, _, count in bins) == 4
        assert bins[1][2] == 3  # 0.6, 0.9 and the edge value 1.0 in the top bin
        assert histogram([], bins=3) == []


def _record(request_id, region, arrival, start, finish, ok=True, action="reconfigure"):
    return RequestRecord(
        request_id=request_id,
        region=region,
        mode="mode1",
        arrival=arrival,
        start=start,
        finish=finish,
        action=action,
        frames=10,
        ok=ok,
    )


class TestSimStats:
    def test_latency_wait_service_decomposition(self):
        stats = SimStats()
        stats.record(_record(0, "A", arrival=0.0, start=1.0, finish=3.0))
        record = stats.records[0]
        assert record.wait == 1.0
        assert record.service == 2.0
        assert record.latency == 3.0

    def test_blocking_probability_counts_drops_and_failures(self):
        stats = SimStats()
        stats.record(_record(0, "A", 0.0, 0.0, 1.0))
        stats.record(_record(1, "A", 0.0, 1.0, 1.0, ok=False, action="blocked"))
        stats.record_rejected_arrival()
        assert stats.blocking_probability == pytest.approx(2 / 3)
        assert len(stats.served) == 1
        assert len(stats.blocked) == 1

    def test_utilization_tables_are_non_empty(self):
        stats = SimStats()
        stats.record(_record(0, "A", 0.0, 0.0, 2.0))
        stats.record(_record(1, "B", 1.0, 2.0, 3.0))
        assert stats.port_utilization(num_ports=1, makespan=10.0) == pytest.approx(0.3)
        assert stats.region_busy_times() == {"A": 2.0, "B": 1.0}
        rows = stats.utilization_rows(num_ports=1, makespan=10.0)
        assert rows[0][0] == "port(s)"
        assert len(rows) == 3
        latency_rows = stats.latency_rows()
        assert [row[0] for row in latency_rows] == ["latency", "wait", "service"]
        assert all(row[1] == 2 for row in latency_rows)

    def test_empty_stats_render_dashes(self):
        stats = SimStats()
        rows = stats.latency_rows()
        assert all(row[2] == "-" for row in rows)
        assert stats.blocking_probability == 0.0
        assert "latency" in stats.format_latency()

    def test_actions_counter(self):
        stats = SimStats()
        stats.record(_record(0, "A", 0.0, 0.0, 1.0))
        stats.record(_record(1, "A", 0.0, 1.0, 2.0, action="relocate+reconfigure"))
        assert stats.actions() == {"reconfigure": 1, "relocate+reconfigure": 1}

    def test_merge_unions_records_and_counters(self):
        left, right = SimStats(), SimStats()
        left.record(_record(0, "A", 0.0, 0.0, 1.0))
        left.record_fault(2.0)
        right.record(_record(0, "B", 0.0, 1.0, 3.0, ok=False, action="blocked"))
        right.record_rejected_arrival()
        merged = SimStats.merged([left, right])
        assert len(merged) == 2
        assert merged.fault_times == [2.0]
        assert merged.rejected_arrivals == 1
        assert merged.blocking_probability == pytest.approx(2 / 3)
        # originals untouched
        assert len(left) == 1 and len(right) == 1

    def test_summary_matches_per_percentile_calls(self):
        stats = SimStats()
        for index in range(20):
            stats.record(_record(index, "A", 0.0, 0.0, float(index + 1)))
        summary = stats.latency_summary()["latency"]
        latencies = [record.latency for record in stats.records]
        for pct in (50, 90, 99):
            assert summary[f"p{pct}"] == percentile(latencies, pct)
