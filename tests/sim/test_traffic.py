"""Tests of the arrival-process generators."""

import pytest

from repro.runtime.scheduler import ModeSchedule, random_schedule
from repro.sim import (
    InhomogeneousPoissonTraffic,
    MMPPTraffic,
    PoissonTraffic,
    TraceReplayTraffic,
    sinusoidal_rate,
)

REGIONS = ["A", "B", "C"]


class TestPoissonTraffic:
    def test_seeded_and_reproducible(self):
        a = PoissonTraffic(REGIONS, rate=5.0, seed=11).generate(50.0)
        b = PoissonTraffic(REGIONS, rate=5.0, seed=11).generate(50.0)
        assert a == b
        assert PoissonTraffic(REGIONS, rate=5.0, seed=12).generate(50.0) != a

    def test_times_sorted_and_bounded(self):
        requests = PoissonTraffic(REGIONS, rate=5.0, seed=0).generate(20.0)
        times = [request.time for request in requests]
        assert times == sorted(times)
        assert all(0 < time < 20.0 for time in times)

    def test_rate_roughly_matches(self):
        requests = PoissonTraffic(REGIONS, rate=10.0, seed=1).generate(200.0)
        assert 0.75 * 2000 < len(requests) < 1.25 * 2000

    def test_regions_and_modes_drawn_from_population(self):
        requests = PoissonTraffic(REGIONS, rate=5.0, modes_per_region=2, seed=0).generate(30.0)
        assert {request.region for request in requests} <= set(REGIONS)
        assert {request.mode for request in requests} <= {"mode1", "mode2"}

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonTraffic(REGIONS, rate=0.0)
        with pytest.raises(ValueError):
            PoissonTraffic([], rate=1.0)
        with pytest.raises(ValueError):
            PoissonTraffic(REGIONS, rate=1.0).generate(0.0)


class TestInhomogeneousPoissonTraffic:
    def test_thinning_tracks_the_rate_function(self):
        # rate ramps from 0 to 10 over [0, 100]: most arrivals land late
        traffic = InhomogeneousPoissonTraffic(
            REGIONS, rate_fn=lambda t: t / 10.0, rate_max=10.0, seed=3
        )
        requests = traffic.generate(100.0)
        assert requests
        first_half = sum(1 for request in requests if request.time < 50.0)
        assert first_half < len(requests) / 2

    def test_reproducible(self):
        rate = sinusoidal_rate(base=4.0, amplitude=3.0, period=20.0)
        a = InhomogeneousPoissonTraffic(REGIONS, rate, 7.0, seed=5).generate(60.0)
        b = InhomogeneousPoissonTraffic(REGIONS, rate, 7.0, seed=5).generate(60.0)
        assert a == b

    def test_rate_fn_exceeding_dominating_rate_raises(self):
        traffic = InhomogeneousPoissonTraffic(
            REGIONS, rate_fn=lambda t: 100.0, rate_max=1.0, seed=0
        )
        with pytest.raises(ValueError):
            traffic.generate(100.0)

    def test_sinusoidal_rate_validation(self):
        with pytest.raises(ValueError):
            sinusoidal_rate(base=1.0, amplitude=2.0, period=10.0)
        with pytest.raises(ValueError):
            sinusoidal_rate(base=0.0, amplitude=0.0, period=10.0)


class TestMMPPTraffic:
    def test_reproducible_and_bounded(self):
        a = MMPPTraffic(REGIONS, rates=(1.0, 20.0), mean_sojourns=(5.0, 1.0), seed=2)
        b = MMPPTraffic(REGIONS, rates=(1.0, 20.0), mean_sojourns=(5.0, 1.0), seed=2)
        first, second = a.generate(100.0), b.generate(100.0)
        assert first == second
        times = [request.time for request in first]
        assert times == sorted(times)
        assert all(time < 100.0 for time in times)

    def test_mean_rate_between_the_two_states(self):
        traffic = MMPPTraffic(
            REGIONS, rates=(1.0, 10.0), mean_sojourns=(10.0, 10.0), seed=4
        )
        count = len(traffic.generate(500.0))
        assert 1.0 * 500 * 0.5 < count < 10.0 * 500

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPPTraffic(REGIONS, rates=(1.0,))
        with pytest.raises(ValueError):
            MMPPTraffic(REGIONS, rates=(0.0, 1.0))
        with pytest.raises(ValueError):
            MMPPTraffic(REGIONS, mean_sojourns=(0.0, 1.0))


class TestTraceReplayTraffic:
    def test_untimed_schedule_replays_as_a_burst_in_order(self):
        schedule = ModeSchedule(steps=(("A", "mode1"), ("B", "mode2"), ("A", "mode3")))
        requests = TraceReplayTraffic(schedule).generate(10.0)
        assert [(r.time, r.region, r.mode) for r in requests] == [
            (0.0, "A", "mode1"),
            (0.0, "B", "mode2"),
            (0.0, "A", "mode3"),
        ]

    def test_dwell_times_become_cumulative_timestamps(self):
        schedule = ModeSchedule(
            steps=(("A", "mode1"), ("B", "mode2"), ("A", "mode3")),
            dwells=(1.0, 2.5, 4.0),
        )
        requests = TraceReplayTraffic(schedule).generate(10.0)
        assert [request.time for request in requests] == [0.0, 1.0, 3.5]

    def test_horizon_truncates_and_offset_shifts(self):
        schedule = ModeSchedule(
            steps=(("A", "mode1"), ("B", "mode2")), dwells=(5.0, 5.0)
        )
        assert len(TraceReplayTraffic(schedule).generate(4.0)) == 1
        shifted = TraceReplayTraffic(schedule, offset=2.0).generate(10.0)
        assert [request.time for request in shifted] == [2.0, 7.0]

    def test_random_timed_schedule_round_trips(self):
        schedule = random_schedule(REGIONS, length=20, seed=9, dwell_mean=1.5)
        assert len(schedule.dwells) == 20
        requests = TraceReplayTraffic(schedule).generate(float("inf"))
        assert len(requests) == 20
        assert [request.time for request in requests] == [
            time for time, _, _ in schedule.timed_steps()
        ]
