"""Tests of virtual time and the deterministic event queue."""

import pytest

from repro.sim import EventQueue, SimEventKind, SimTimeError, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        assert clock.advance_to(1.5) == 1.5
        assert clock.now == 1.5

    def test_is_callable_for_the_manager_hook(self):
        clock = VirtualClock(start=2.0)
        assert clock() == 2.0

    def test_advancing_to_the_same_time_is_a_noop(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_moving_backwards_raises(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        with pytest.raises(SimTimeError):
            clock.advance_to(4.0)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(3.0, SimEventKind.ARRIVAL, "late")
        queue.push(1.0, SimEventKind.ARRIVAL, "early")
        queue.push(2.0, SimEventKind.ARRIVAL, "middle")
        assert [queue.pop().payload for _ in range(3)] == ["early", "middle", "late"]

    def test_same_instant_priority_complete_fault_arrival(self):
        queue = EventQueue()
        queue.push(1.0, SimEventKind.ARRIVAL, "arrival")
        queue.push(1.0, SimEventKind.FAULT, "fault")
        queue.push(1.0, SimEventKind.COMPLETE, "complete")
        assert [queue.pop().payload for _ in range(3)] == [
            "complete",
            "fault",
            "arrival",
        ]

    def test_fifo_tie_break_within_kind(self):
        queue = EventQueue()
        for index in range(5):
            queue.push(1.0, SimEventKind.ARRIVAL, index)
        assert [queue.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek() is None
        assert not queue
        queue.push(1.0, SimEventKind.ARRIVAL, "x")
        assert queue.peek().payload == "x"
        assert len(queue) == 1
        queue.pop()
        with pytest.raises(IndexError):
            queue.pop()

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(-1.0, SimEventKind.ARRIVAL)
