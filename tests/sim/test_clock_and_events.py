"""Tests of virtual time and the deterministic event queue."""

import pytest

from repro.sim import EventQueue, SimEventKind, SimTimeError, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        assert clock.advance_to(1.5) == 1.5
        assert clock.now == 1.5

    def test_is_callable_for_the_manager_hook(self):
        clock = VirtualClock(start=2.0)
        assert clock() == 2.0

    def test_advancing_to_the_same_time_is_a_noop(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_moving_backwards_raises(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        with pytest.raises(SimTimeError):
            clock.advance_to(4.0)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(3.0, SimEventKind.ARRIVAL, "late")
        queue.push(1.0, SimEventKind.ARRIVAL, "early")
        queue.push(2.0, SimEventKind.ARRIVAL, "middle")
        assert [queue.pop().payload for _ in range(3)] == ["early", "middle", "late"]

    def test_same_instant_priority_complete_fault_arrival(self):
        queue = EventQueue()
        queue.push(1.0, SimEventKind.ARRIVAL, "arrival")
        queue.push(1.0, SimEventKind.FAULT, "fault")
        queue.push(1.0, SimEventKind.COMPLETE, "complete")
        assert [queue.pop().payload for _ in range(3)] == [
            "complete",
            "fault",
            "arrival",
        ]

    def test_fifo_tie_break_within_kind(self):
        queue = EventQueue()
        for index in range(5):
            queue.push(1.0, SimEventKind.ARRIVAL, index)
        assert [queue.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek() is None
        assert not queue
        queue.push(1.0, SimEventKind.ARRIVAL, "x")
        assert queue.peek().payload == "x"
        assert len(queue) == 1
        queue.pop()
        with pytest.raises(IndexError):
            queue.pop()

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(-1.0, SimEventKind.ARRIVAL)
        with pytest.raises(ValueError):
            queue.push_batch([(-0.5, SimEventKind.ARRIVAL, None)])

    def test_repair_pops_after_complete_before_fault(self):
        queue = EventQueue()
        queue.push(1.0, SimEventKind.FAULT, "fault")
        queue.push(1.0, SimEventKind.REPAIR, "repair")
        queue.push(1.0, SimEventKind.COMPLETE, "complete")
        assert [queue.pop().payload for _ in range(3)] == [
            "complete",
            "repair",
            "fault",
        ]


class TestEventQueueBatched:
    def test_batch_pops_in_time_order(self):
        queue = EventQueue()
        queue.push_batch(
            [
                (3.0, SimEventKind.ARRIVAL, "late"),
                (1.0, SimEventKind.ARRIVAL, "early"),
                (2.0, SimEventKind.ARRIVAL, "middle"),
            ]
        )
        assert [queue.pop().payload for _ in range(3)] == ["early", "middle", "late"]

    def test_batch_keeps_fifo_ties_like_sequential_pushes(self):
        queue = EventQueue()
        queue.push_batch([(1.0, SimEventKind.ARRIVAL, index) for index in range(5)])
        assert [queue.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_two_batches_merge(self):
        # the engine batches arrivals then faults: both runs must interleave
        queue = EventQueue()
        queue.push_batch([(t, SimEventKind.ARRIVAL, f"a{t}") for t in (1.0, 3.0, 5.0)])
        queue.push_batch([(t, SimEventKind.FAULT, f"f{t}") for t in (2.0, 4.0)])
        assert [queue.pop().payload for _ in range(5)] == [
            "a1.0",
            "f2.0",
            "a3.0",
            "f4.0",
            "a5.0",
        ]

    def test_dynamic_pushes_interleave_with_batch(self):
        queue = EventQueue()
        queue.push_batch([(t, SimEventKind.ARRIVAL, f"a{t}") for t in (1.0, 2.0, 4.0)])
        assert queue.pop().payload == "a1.0"
        queue.push(3.0, SimEventKind.COMPLETE, "c3.0")  # scheduled mid-run
        assert [queue.pop().payload for _ in range(3)] == ["a2.0", "c3.0", "a4.0"]

    def test_same_instant_priority_across_batch_and_push(self):
        queue = EventQueue()
        queue.push_batch([(1.0, SimEventKind.ARRIVAL, "arrival")])
        queue.push(1.0, SimEventKind.COMPLETE, "complete")
        assert queue.peek().payload == "complete"
        assert [queue.pop().payload for _ in range(2)] == ["complete", "arrival"]

    def test_matches_reference_heap_on_random_schedule(self):
        import heapq
        import random

        rng = random.Random(13)
        items = [
            (
                round(rng.uniform(0.0, 50.0), 3),
                rng.choice(list(SimEventKind)),
                index,
            )
            for index in range(500)
        ]
        queue = EventQueue()
        queue.push_batch(items[:300])
        for time, kind, payload in items[300:]:
            queue.push(time, kind, payload)

        priorities = {kind: rank for rank, kind in enumerate(SimEventKind)}
        reference = []
        for seq, (time, kind, payload) in enumerate(items):
            heapq.heappush(reference, (time, priorities[kind], seq, payload))
        expected = [heapq.heappop(reference)[-1] for _ in range(len(items))]
        assert len(queue) == len(items)
        assert [queue.pop().payload for _ in range(len(items))] == expected
        assert not queue
