"""Tests of the decision policies and the discrete-event engine."""

import pytest

from repro.device.resources import ResourceVector
from repro.floorplan.geometry import Rect
from repro.floorplan.placement import Floorplan
from repro.floorplan.problem import FloorplanProblem, Region
from repro.runtime import EventKind, ReconfigurationManager
from repro.runtime.scheduler import round_robin_schedule
from repro.service.portfolio import Strategy
from repro.sim import (
    ModeRequest,
    PoissonTraffic,
    Policy,
    PolicyOutcome,
    ReconfigureInPlace,
    RelocateFirst,
    ResolveViaService,
    ScheduledFaults,
    SimConfig,
    SimulationEngine,
    TraceReplayTraffic,
)


@pytest.fixture()
def manual_floorplan(two_type_device):
    """Two regions, each with its own reserved free-compatible area."""
    regions = [
        Region("A", ResourceVector(CLB=4)),
        Region("B", ResourceVector(CLB=4)),
    ]
    problem = FloorplanProblem(two_type_device, regions, name="sim-manual")
    return Floorplan.from_rects(
        problem,
        {"A": Rect(0, 0, 2, 2), "B": Rect(5, 0, 2, 2)},
        free_rects={"A 1": (Rect(2, 0, 2, 2), "A"), "B 1": (Rect(8, 0, 2, 2), "B")},
    )


@pytest.fixture()
def bare_floorplan(two_type_device):
    """One region, no reserved free areas — relocation is impossible."""
    problem = FloorplanProblem(
        two_type_device, [Region("A", ResourceVector(CLB=4))], name="sim-bare"
    )
    return Floorplan.from_rects(problem, {"A": Rect(0, 0, 2, 2)})


class TestPolicies:
    def test_reconfigure_in_place_serves_and_blocks_on_fault(self, manual_floorplan):
        manager = ReconfigurationManager(manual_floorplan)
        policy = ReconfigureInPlace()
        outcome = policy.apply(manager, ModeRequest(0.0, "A", "mode1"))
        assert outcome.ok and outcome.action == "reconfigure" and outcome.frames > 0
        manager.inject_fault(manager.current_location("A"))
        blocked = policy.apply(manager, ModeRequest(1.0, "A", "mode2"))
        assert not blocked.ok and blocked.action == "blocked"
        assert "fault-masked" in blocked.detail

    def test_relocate_first_routes_around_a_fault(self, manual_floorplan):
        manager = ReconfigurationManager(manual_floorplan)
        policy = RelocateFirst()
        policy.apply(manager, ModeRequest(0.0, "A", "mode1"))
        home = manager.current_location("A")
        manager.inject_fault(home)
        outcome = policy.apply(manager, ModeRequest(1.0, "A", "mode2"))
        assert outcome.ok and outcome.action == "relocate+reconfigure"
        assert manager.current_location("A") != home
        assert manager.active_module("A") == "mode2"

    def test_relocate_first_blocks_without_free_area(self, bare_floorplan):
        manager = ReconfigurationManager(bare_floorplan)
        policy = RelocateFirst()
        policy.apply(manager, ModeRequest(0.0, "A", "mode1"))
        manager.inject_fault(manager.current_location("A"))
        outcome = policy.apply(manager, ModeRequest(1.0, "A", "mode2"))
        assert not outcome.ok and outcome.action == "blocked"

    def test_relocate_first_blocks_unloaded_region_with_faulty_home(
        self, manual_floorplan
    ):
        manager = ReconfigurationManager(manual_floorplan)
        manager.inject_fault(manager.current_location("A"))
        outcome = RelocateFirst().apply(manager, ModeRequest(0.0, "A", "mode1"))
        assert not outcome.ok  # nothing loaded, nothing to relocate

    def test_relocate_first_does_not_move_on_unknown_mode(self, manual_floorplan):
        manager = ReconfigurationManager(
            manual_floorplan, allowed_modes={"A": ["mode1"]}
        )
        policy = RelocateFirst()
        policy.apply(manager, ModeRequest(0.0, "A", "mode1"))
        home = manager.current_location("A")
        outcome = policy.apply(manager, ModeRequest(1.0, "A", "mode9"))
        # moving the module cannot make an unknown mode loadable
        assert not outcome.ok and "unknown mode" in outcome.detail
        assert manager.current_location("A") == home
        assert manager.trace.count(EventKind.RELOCATE) == 0

    def test_relocate_first_handles_unknown_region(self, manual_floorplan):
        manager = ReconfigurationManager(manual_floorplan)
        outcome = RelocateFirst().apply(manager, ModeRequest(0.0, "nope", "mode1"))
        assert not outcome.ok and "unknown region" in outcome.detail


class TestEngineQueueing:
    def test_single_port_serializes_distinct_regions(self, manual_floorplan):
        schedule = round_robin_schedule(["A", "B"], modes_per_region=1, rounds=1)
        engine = SimulationEngine(
            ReconfigurationManager(manual_floorplan),
            traffic=TraceReplayTraffic(schedule),
            policy=ReconfigureInPlace(),
            config=SimConfig(horizon=10.0, seconds_per_frame=1e-3, num_ports=1),
        )
        result = engine.run()
        first, second = sorted(result.stats.records, key=lambda r: r.request_id)
        assert first.wait == 0.0
        assert second.wait == pytest.approx(first.service)

    def test_two_ports_run_distinct_regions_in_parallel(self, manual_floorplan):
        schedule = round_robin_schedule(["A", "B"], modes_per_region=1, rounds=1)
        engine = SimulationEngine(
            ReconfigurationManager(manual_floorplan),
            traffic=TraceReplayTraffic(schedule),
            policy=ReconfigureInPlace(),
            config=SimConfig(horizon=10.0, seconds_per_frame=1e-3, num_ports=2),
        )
        result = engine.run()
        assert all(record.wait == 0.0 for record in result.stats.records)

    def test_same_region_serializes_even_with_spare_ports(self, manual_floorplan):
        schedule = round_robin_schedule(["A"], modes_per_region=2, rounds=2)
        engine = SimulationEngine(
            ReconfigurationManager(manual_floorplan),
            traffic=TraceReplayTraffic(schedule),
            policy=ReconfigureInPlace(),
            config=SimConfig(horizon=10.0, seconds_per_frame=1e-3, num_ports=4),
        )
        result = engine.run()
        waits = [record.wait for record in result.stats.records]
        assert waits[0] == 0.0
        assert all(later > 0.0 for later in waits[1:])

    def test_queue_capacity_drops_overflow_arrivals(self, manual_floorplan):
        schedule = round_robin_schedule(["A", "B"], modes_per_region=1, rounds=2)
        engine = SimulationEngine(
            ReconfigurationManager(manual_floorplan),
            traffic=TraceReplayTraffic(schedule),
            policy=ReconfigureInPlace(),
            config=SimConfig(
                horizon=10.0, seconds_per_frame=1e-3, num_ports=1, queue_capacity=1
            ),
        )
        result = engine.run()
        assert result.stats.rejected_arrivals == 2
        assert len(result.stats.records) == 2
        assert result.stats.blocking_probability == pytest.approx(0.5)

    def test_fault_before_first_load_blocks_in_place_policy(self, manual_floorplan):
        engine = SimulationEngine(
            ReconfigurationManager(manual_floorplan),
            traffic=TraceReplayTraffic(
                round_robin_schedule(["A"], modes_per_region=1, rounds=1), offset=1.0
            ),
            policy=ReconfigureInPlace(),
            faults=ScheduledFaults([(0.5, "A")]),
            config=SimConfig(horizon=10.0),
        )
        result = engine.run()
        assert len(result.stats.blocked) == 1
        assert result.stats.actions() == {"blocked": 1}
        assert len(result.stats.fault_times) == 1


class TestEngineEndToEnd:
    def _run(self, floorplan):
        engine = SimulationEngine(
            ReconfigurationManager(floorplan),
            traffic=PoissonTraffic(["A", "B"], rate=3.0, seed=7),
            policy=RelocateFirst(),
            faults=ScheduledFaults([(2.0, "A")]),
            config=SimConfig(horizon=20.0, seconds_per_frame=1e-3),
        )
        return engine.run()

    def test_seeded_run_is_byte_for_byte_reproducible(self, manual_floorplan):
        first = self._run(manual_floorplan)
        second = self._run(manual_floorplan)
        assert first.format_report() == second.format_report()

    def test_fault_forces_relocation_and_tables_are_populated(self, manual_floorplan):
        result = self._run(manual_floorplan)
        assert result.stats.actions().get("relocate+reconfigure", 0) >= 1
        assert result.trace_summary()["relocate"] >= 1
        assert result.trace_summary()["fault"] == 1
        # non-empty latency/utilization percentile tables via repro.analysis
        latency_rows = result.stats.latency_rows()
        assert latency_rows and all(row[1] > 0 for row in latency_rows)
        utilization = result.stats.format_utilization(
            result.config.num_ports, result.makespan
        )
        assert "port(s)" in utilization and "A" in utilization
        # virtual-time trace stamps are monotone within each manager generation
        for trace in result.traces:
            times = [event.time for event in trace]
            assert times == sorted(times)

    def test_bitstream_cache_counters_exposed(self, manual_floorplan):
        result = self._run(manual_floorplan)
        stats = result.manager.cache_stats()
        assert stats["hits"] > 0
        assert stats["misses"] > 0
        assert stats["size"] <= stats["capacity"]


class TestResolveViaService:
    def test_refloorplan_recovers_an_unrelocatable_region(
        self, tiny_relocation_solution, fast_options
    ):
        report, _ = tiny_relocation_solution
        manager = ReconfigurationManager(report.floorplan)
        policy = ResolveViaService(
            options=fast_options,
            strategies=[Strategy("HO-tessellation", kind="milp", mode="HO")],
            resolve_latency=0.5,
        )
        schedule = round_robin_schedule(
            ["alpha", "beta", "gamma"], modes_per_region=2, rounds=2
        ).with_dwells([1.0] * 6)
        # alpha has no reserved free area: the fault forces a live re-floorplan
        engine = SimulationEngine(
            manager,
            traffic=TraceReplayTraffic(schedule),
            policy=policy,
            faults=ScheduledFaults([(2.5, "alpha")]),
            config=SimConfig(horizon=30.0, seconds_per_frame=1e-3),
        )
        result = engine.run()
        assert policy.resolve_count == 1
        assert result.refloorplans == 1
        assert result.stats.actions().get("resolve+reconfigure", 0) == 1
        assert not result.stats.blocked
        # the re-solved device masks the faulty fabric as forbidden
        assert result.manager.device.forbidden
        # the displaced modules were reloaded and the sim kept serving
        assert result.manager.active_module("alpha") is not None
        assert len(result.traces) == 2
        # the inherited fault is not re-recorded: one FAULT event total
        assert result.trace_summary()["fault"] == 1
        assert len(result.stats.fault_times) == 1
        # the bitstream cache object survived the manager swap
        assert result.manager.bitstream_cache is manager.bitstream_cache

    def test_passes_through_when_relocation_suffices(self, manual_floorplan):
        manager = ReconfigurationManager(manual_floorplan)
        policy = ResolveViaService(resolve_latency=0.5)
        policy._fallback.apply(manager, ModeRequest(0.0, "A", "mode1"))
        manager.inject_fault(manager.current_location("A"))
        outcome = policy.apply(manager, ModeRequest(1.0, "A", "mode2"))
        assert outcome.ok and outcome.action == "relocate+reconfigure"
        assert policy.resolve_count == 0

    def test_no_solver_escalation_for_non_placement_failures(self, manual_floorplan):
        manager = ReconfigurationManager(
            manual_floorplan, allowed_modes={"A": ["mode1"]}
        )
        policy = ResolveViaService(resolve_latency=0.5)
        # unknown mode and unknown region block without burning a re-solve
        unknown_mode = policy.apply(manager, ModeRequest(0.0, "A", "mode9"))
        unknown_region = policy.apply(manager, ModeRequest(1.0, "nope", "mode1"))
        assert not unknown_mode.ok and not unknown_region.ok
        assert policy.resolve_count == 0


class _SwapOnA(Policy):
    """Test double: the first request for region A swaps in a new manager."""

    name = "swap-on-a"

    def __init__(self, replacement, extra_time=2.0):
        self.replacement = replacement
        self.extra_time = extra_time
        self.swapped = False

    def apply(self, manager, request):
        if request.region == "A" and not self.swapped:
            self.swapped = True
            return PolicyOutcome(
                ok=True,
                action="resolve+reconfigure",
                frames=0,
                extra_time=self.extra_time,
                new_manager=self.replacement,
            )
        bitstream = manager.reconfigure(request.region, request.mode)
        return PolicyOutcome(ok=True, action="reconfigure", frames=bitstream.num_frames)


class TestManagerSwapStall:
    def test_swap_stalls_every_port_until_complete(self, manual_floorplan):
        schedule = round_robin_schedule(["A", "B"], modes_per_region=1, rounds=1)
        policy = _SwapOnA(ReconfigurationManager(manual_floorplan), extra_time=2.0)
        engine = SimulationEngine(
            ReconfigurationManager(manual_floorplan),
            traffic=TraceReplayTraffic(schedule),
            policy=policy,
            config=SimConfig(horizon=10.0, seconds_per_frame=1e-3, num_ports=2),
        )
        result = engine.run()
        assert result.refloorplans == 1
        by_region = {record.region: record for record in result.stats.records}
        # with 2 ports B would normally start instantly; the swap stalls it
        assert by_region["A"].wait == 0.0
        assert by_region["B"].wait == pytest.approx(2.0)
        assert by_region["B"].ok


class TestEngineFaultEdgeCases:
    def test_fault_on_unknown_region_is_ignored_not_recorded(self, manual_floorplan):
        engine = SimulationEngine(
            ReconfigurationManager(manual_floorplan),
            traffic=TraceReplayTraffic(
                round_robin_schedule(["A"], modes_per_region=1, rounds=1)
            ),
            policy=ReconfigureInPlace(),
            faults=ScheduledFaults([(0.5, "NOPE")]),
            config=SimConfig(horizon=10.0),
        )
        result = engine.run()
        assert result.stats.fault_times == []
        assert result.trace_summary()["fault"] == 0
        assert len(result.stats.served) == 1
