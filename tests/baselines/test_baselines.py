"""Unit tests for the heuristic floorplanners."""

import pytest

from repro.baselines import (
    AnnealingOptions,
    annealing_floorplan,
    first_fit_floorplan,
    relocation_aware_greedy,
    tessellation_floorplan,
)
from repro.baselines.packing import (
    best_rect,
    candidate_orders,
    first_rect,
    rect_frames,
    rect_is_free,
    rect_resources,
    sort_regions_by_demand,
    sort_regions_by_scarcity,
)
from repro.floorplan import Rect, verify_floorplan
from repro.floorplan.metrics import evaluate_floorplan
from repro.relocation import RelocationSpec


class TestPackingHelpers:
    def test_rect_is_free_checks_everything(self, small_device):
        assert rect_is_free(small_device, Rect(0, 0, 2, 2), [])
        assert not rect_is_free(small_device, Rect(9, 0, 2, 2), [])  # out of bounds
        assert not rect_is_free(small_device, Rect(0, 0, 2, 2), [Rect(1, 1, 2, 2)])

    def test_rect_resources_and_frames(self, small_device):
        rect = Rect(3, 0, 2, 2)  # includes the BRAM column at col 4
        resources = rect_resources(small_device, rect)
        assert resources.as_dict() == {"CLB": 2, "BRAM": 2}
        assert rect_frames(small_device, rect) == 2 * 36 + 2 * 30

    def test_first_and_best_rect(self, small_device, tiny_problem):
        region = tiny_problem.region_by_name("beta")  # 2 CLB + 1 BRAM
        first = first_rect(small_device, region, [])
        best = best_rect(small_device, region, [])
        assert first is not None and best is not None
        assert rect_resources(small_device, best).covers(region.requirements)
        assert rect_frames(small_device, best) <= rect_frames(small_device, first)

    def test_orderings(self, small_device, tiny_problem):
        by_demand = sort_regions_by_demand(tiny_problem.regions)
        assert by_demand[0].total_tiles >= by_demand[-1].total_tiles
        by_scarcity = sort_regions_by_scarcity(small_device, tiny_problem.regions)
        assert len(by_scarcity) == len(tiny_problem.regions)
        orders = candidate_orders(small_device, tiny_problem.regions)
        assert all(len(order) == len(tiny_problem.regions) for order in orders)
        signatures = {tuple(r.name for r in order) for order in orders}
        assert len(signatures) == len(orders)  # no duplicate orders


@pytest.mark.parametrize(
    "placer",
    [first_fit_floorplan, tessellation_floorplan, lambda p: tessellation_floorplan(p, align_rows=False)],
    ids=["first-fit", "tessellation", "tessellation-unaligned"],
)
class TestGreedyPlacers:
    def test_produces_verified_floorplan(self, placer, tiny_problem):
        floorplan = placer(tiny_problem)
        assert floorplan is not None and floorplan.is_complete
        assert verify_floorplan(floorplan, check_relocation=False).is_feasible

    def test_reports_solve_time(self, placer, tiny_problem):
        floorplan = placer(tiny_problem)
        assert floorplan.solve_time >= 0.0


class TestTessellationSpecifics:
    def test_explicit_order_respected(self, tiny_problem):
        floorplan = tessellation_floorplan(
            tiny_problem, region_order=["gamma", "beta", "alpha"]
        )
        assert floorplan is not None and floorplan.is_complete

    def test_alignment_does_not_beat_unaligned(self, tiny_problem):
        aligned = tessellation_floorplan(tiny_problem)
        unaligned = tessellation_floorplan(tiny_problem, align_rows=False)
        assert aligned is not None and unaligned is not None
        aligned_waste = evaluate_floorplan(aligned).wasted_frames
        unaligned_waste = evaluate_floorplan(unaligned).wasted_frames
        assert unaligned_waste <= aligned_waste


class TestAnnealing:
    def test_annealer_repairs_and_verifies(self, tiny_problem):
        floorplan = annealing_floorplan(
            tiny_problem, AnnealingOptions(iterations=4000, seed=7)
        )
        assert floorplan is not None
        assert floorplan.solver_status == "annealing"
        assert verify_floorplan(floorplan, check_relocation=False).is_feasible

    def test_seeded_runs_are_deterministic(self, tiny_problem):
        options = AnnealingOptions(iterations=1500, seed=11)
        first = annealing_floorplan(tiny_problem, options)
        second = annealing_floorplan(tiny_problem, options)
        assert {n: p.rect for n, p in first.placements.items()} == {
            n: p.rect for n, p in second.placements.items()
        }


class TestRelocationAwareGreedy:
    def test_reserves_requested_copies(self, tiny_problem):
        spec = RelocationSpec.as_constraint({"beta": 1, "gamma": 1})
        floorplan = relocation_aware_greedy(tiny_problem, spec)
        assert floorplan is not None
        assert floorplan.num_free_compatible_areas == 2
        assert verify_floorplan(floorplan).is_feasible

    def test_soft_requests_may_be_dropped(self, tiny_problem):
        spec = RelocationSpec.as_metric({"alpha": 8})  # impossible count
        floorplan = relocation_aware_greedy(tiny_problem, spec)
        assert floorplan is not None and floorplan.is_complete
        assert len(floorplan.free_areas) < 8

    def test_without_spec_behaves_like_greedy(self, tiny_problem):
        floorplan = relocation_aware_greedy(tiny_problem)
        assert floorplan is not None and not floorplan.free_areas
        assert verify_floorplan(floorplan).is_feasible

    def test_impossible_hard_request_returns_none(self, tiny_problem):
        spec = RelocationSpec.as_constraint({"alpha": 50})
        assert relocation_aware_greedy(tiny_problem, spec) is None
