"""Tests of the run-time manager, scheduler and trace."""

import warnings

import pytest

from repro.runtime import (
    BitstreamCache,
    EventKind,
    ModeSchedule,
    ReconfigurationError,
    ReconfigurationManager,
    round_robin_schedule,
)
from repro.runtime.scheduler import random_schedule

# the deprecated alias still resolves (with a warning) for old callers
RuntimeError_ = ReconfigurationError


@pytest.fixture(scope="module")
def managed_floorplan(tiny_relocation_solution):
    report, _ = tiny_relocation_solution
    return report.floorplan


class TestScheduler:
    def test_round_robin(self):
        schedule = round_robin_schedule(["A", "B"], modes_per_region=2, rounds=3)
        assert len(schedule) == 6
        assert schedule.regions() == ["A", "B"]
        assert schedule.activations_per_region() == {"A": 3, "B": 3}

    def test_random_schedule_is_seeded(self):
        a = random_schedule(["A", "B"], length=10, seed=5)
        b = random_schedule(["A", "B"], length=10, seed=5)
        assert a.steps == b.steps
        with pytest.raises(ValueError):
            random_schedule([], length=3)


class TestDwellTimes:
    def test_untimed_schedule_has_zero_dwells_and_duration(self):
        schedule = round_robin_schedule(["A", "B"], rounds=1)
        assert schedule.dwells == ()
        assert schedule.duration == 0.0
        assert schedule.dwell_at(0) == 0.0
        assert all(time == 0.0 for time, _, _ in schedule.timed_steps())

    def test_with_dwells_produces_cumulative_timed_steps(self):
        schedule = ModeSchedule(steps=(("A", "mode1"), ("B", "mode2")))
        timed = schedule.with_dwells([2.0, 3.0])
        assert timed.duration == 5.0
        assert timed.timed_steps() == [(0.0, "A", "mode1"), (2.0, "B", "mode2")]
        # the untimed view is unchanged: steps convert losslessly
        assert timed.steps == schedule.steps

    def test_dwell_validation(self):
        with pytest.raises(ValueError):
            ModeSchedule(steps=(("A", "mode1"),), dwells=(1.0, 2.0))
        with pytest.raises(ValueError):
            ModeSchedule(steps=(("A", "mode1"),), dwells=(-1.0,))
        with pytest.raises(ValueError):
            random_schedule(["A"], length=3, dwell_mean=-1.0)

    def test_random_schedule_dwell_mean_keeps_steps_stable(self):
        untimed = random_schedule(["A", "B"], length=10, seed=5)
        timed = random_schedule(["A", "B"], length=10, seed=5, dwell_mean=2.0)
        assert timed.steps == untimed.steps
        assert len(timed.dwells) == 10
        assert all(dwell >= 0 for dwell in timed.dwells)


class TestDeprecatedAlias:
    def test_package_alias_warns(self):
        import repro.runtime as runtime

        with pytest.warns(DeprecationWarning, match="ReconfigurationError"):
            alias = runtime.RuntimeError_
        assert alias is ReconfigurationError

    def test_module_alias_warns(self):
        import repro.runtime.manager as manager_module

        with pytest.warns(DeprecationWarning, match="ReconfigurationError"):
            alias = manager_module.RuntimeError_
        assert alias is ReconfigurationError

    def test_regular_imports_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.runtime import ReconfigurationManager  # noqa: F401
            from repro.runtime.manager import ReconfigurationError  # noqa: F401

    def test_star_import_does_not_warn(self):
        import repro.runtime as runtime

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            # what `from repro.runtime import *` resolves: every __all__ name
            for name in runtime.__all__:
                getattr(runtime, name)

    def test_unknown_attribute_still_raises(self):
        import repro.runtime as runtime

        with pytest.raises(AttributeError):
            runtime.no_such_name


class TestBitstreamCache:
    def test_lru_eviction_and_counters(self):
        cache = BitstreamCache(capacity=2)
        cache.put(("r", "m1", (0, 0, 1, 1)), "bs1")
        cache.put(("r", "m2", (0, 0, 1, 1)), "bs2")
        assert cache.get(("r", "m1", (0, 0, 1, 1))) == "bs1"  # refresh m1
        cache.put(("r", "m3", (0, 0, 1, 1)), "bs3")  # evicts m2 (LRU)
        assert cache.get(("r", "m2", (0, 0, 1, 1))) is None
        assert cache.get(("r", "m3", (0, 0, 1, 1))) == "bs3"
        stats = cache.stats()
        assert stats == {
            "size": 2,
            "capacity": 2,
            "hits": 2,
            "misses": 1,
            "evictions": 1,
            "invalidations": 0,
        }

    def test_drop_device_invalidates_only_that_device(self):
        cache = BitstreamCache(capacity=8)
        cache.put(("dev-a", "r", "m1", (0, 0, 1, 1)), "a1")
        cache.put(("dev-a", "r", "m2", (0, 0, 1, 1)), "a2")
        cache.put(("dev-b", "r", "m1", (0, 0, 1, 1)), "b1")
        assert cache.drop_device("dev-a") == 2
        assert len(cache) == 1
        assert cache.get(("dev-b", "r", "m1", (0, 0, 1, 1))) == "b1"
        assert cache.stats()["invalidations"] == 2
        assert cache.stats()["evictions"] == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BitstreamCache(capacity=0)

    def test_manager_cache_is_bounded(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan, cache_capacity=2)
        for mode in ("mode1", "mode2", "mode3"):
            manager.reconfigure("beta", mode)
        stats = manager.cache_stats()
        assert stats["size"] <= 2
        assert stats["evictions"] >= 1
        assert stats["misses"] >= 3

    def test_repeat_mode_cycle_hits_the_cache(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        for _ in range(3):
            manager.reconfigure("beta", "mode1")
            manager.reconfigure("beta", "mode2")
        stats = manager.cache_stats()
        assert stats["hits"] == 4
        assert stats["misses"] == 2

    def test_external_cache_shared_between_managers(self, managed_floorplan):
        shared = BitstreamCache(capacity=16)
        first = ReconfigurationManager(managed_floorplan, cache=shared)
        first.reconfigure("beta", "mode1")
        second = ReconfigurationManager(managed_floorplan, cache=shared)
        second.reconfigure("beta", "mode1")
        assert shared.hits == 1  # the second manager reused the first's bitstream
        assert shared.misses == 1


class TestManager:
    def test_requires_complete_floorplan(self, tiny_problem):
        from repro.floorplan.placement import Floorplan

        with pytest.raises(RuntimeError_):
            ReconfigurationManager(Floorplan(problem=tiny_problem))

    def test_configure_then_reconfigure(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        first = manager.reconfigure("beta", "mode1")
        assert manager.active_module("beta") == "mode1"
        assert manager.memory.verify(first)
        manager.reconfigure("beta", "mode2")
        assert manager.active_module("beta") == "mode2"
        assert manager.trace.count(EventKind.CONFIGURE) == 1
        assert manager.trace.count(EventKind.RECONFIGURE) == 1

    def test_relocate_uses_reserved_area(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        manager.reconfigure("beta", "mode1")
        home = manager.current_location("beta")
        targets = manager.available_relocation_targets("beta")
        assert targets, "the floorplan reserved a free-compatible area for beta"
        relocated = manager.relocate("beta")
        assert manager.current_location("beta") != home
        assert manager.memory.verify(relocated)
        assert manager.trace.count(EventKind.RELOCATE) == 1
        # moving back home also works
        manager.return_home("beta")
        assert manager.current_location("beta") == home

    def test_relocate_without_loaded_module_rejected(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        with pytest.raises(RuntimeError_):
            manager.relocate("beta")

    def test_relocate_without_reserved_area_rejected(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        manager.reconfigure("alpha", "mode1")  # alpha has no reserved areas
        with pytest.raises(RuntimeError_):
            manager.relocate("alpha")
        assert manager.trace.count(EventKind.REJECT) == 1

    def test_unknown_region_rejected(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        with pytest.raises(RuntimeError_):
            manager.reconfigure("nope", "mode1")

    def test_schedule_replay_counts_frames(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        schedule = round_robin_schedule(list(managed_floorplan.placements), rounds=2)
        for region, mode in schedule:
            manager.reconfigure(region, mode)
        summary = manager.trace.summary()
        assert summary["configure"] == len(managed_floorplan.placements)
        assert summary["reconfigure"] == len(schedule) - len(managed_floorplan.placements)
        assert summary["frames_written"] > 0
        assert len(manager.trace) == len(schedule)


class TestAvailableRelocationTargets:
    """Occupied-area exclusion in ``available_relocation_targets``."""

    @pytest.fixture()
    def crowded_manager(self, two_type_device):
        from repro.device.resources import ResourceVector
        from repro.floorplan.geometry import Rect
        from repro.floorplan.placement import Floorplan
        from repro.floorplan.problem import FloorplanProblem, Region

        regions = [
            Region("A", ResourceVector(CLB=4)),
            Region("B", ResourceVector(CLB=4)),
        ]
        problem = FloorplanProblem(two_type_device, regions, name="targets")
        # A and B each get a reserved area, but both reservations share ONE
        # rectangle — whoever relocates first occupies it for the other
        shared = Rect(2, 0, 2, 2)
        floorplan = Floorplan.from_rects(
            problem,
            {"A": Rect(0, 0, 2, 2), "B": Rect(5, 0, 2, 2)},
            free_rects={"A 1": (shared, "A"), "B 1": (shared, "B")},
        )
        manager = ReconfigurationManager(floorplan)
        manager.reconfigure("A", "m1")
        manager.reconfigure("B", "m1")
        return manager, shared

    def test_free_area_visible_while_unoccupied(self, crowded_manager):
        manager, shared = crowded_manager
        assert manager.available_relocation_targets("A") == [shared]
        assert manager.available_relocation_targets("B") == [shared]

    def test_area_occupied_by_other_region_is_excluded(self, crowded_manager):
        manager, shared = crowded_manager
        manager.relocate("A", target=shared)
        # B's only reserved area is now hosting A's module
        assert manager.available_relocation_targets("B") == []
        # ...and A's own current rectangle is excluded from its own targets
        assert manager.available_relocation_targets("A") == []
        with pytest.raises(RuntimeError_):
            manager.relocate("B")

    def test_area_freed_again_after_return_home(self, crowded_manager):
        manager, shared = crowded_manager
        manager.relocate("A", target=shared)
        manager.return_home("A")
        assert manager.available_relocation_targets("B") == [shared]

    def test_unsatisfied_soft_area_is_excluded(self, crowded_manager):
        from repro.floorplan.geometry import Rect
        from repro.floorplan.placement import RegionPlacement

        manager, shared = crowded_manager
        manager.floorplan.free_areas["B 2"] = RegionPlacement(
            name="B 2", rect=Rect(7, 0, 2, 2), compatible_with="B", satisfied=False
        )
        assert manager.available_relocation_targets("B") == [shared]


class TestFailurePaths:
    """Runtime failure paths: unknown regions/modes and fault-masked placements."""

    def test_unknown_region_everywhere(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        for call in (
            lambda: manager.reconfigure("nope", "mode1"),
            lambda: manager.relocate("nope"),
            lambda: manager.current_location("nope"),
            lambda: manager.available_relocation_targets("nope"),
        ):
            with pytest.raises(ReconfigurationError, match="unknown region"):
                call()

    def test_unknown_mode_rejected_when_modes_are_declared(self, managed_floorplan):
        manager = ReconfigurationManager(
            managed_floorplan, allowed_modes={"beta": ["mode1", "mode2"]}
        )
        manager.reconfigure("beta", "mode1")
        with pytest.raises(ReconfigurationError, match="unknown mode"):
            manager.reconfigure("beta", "mode9")
        # the rejection is traced and the active module is unchanged
        assert manager.trace.count(EventKind.REJECT) == 1
        assert manager.active_module("beta") == "mode1"
        # a region absent from the table accepts nothing
        with pytest.raises(ReconfigurationError, match="unknown mode"):
            manager.reconfigure("alpha", "mode1")

    def test_relocation_with_no_compatible_free_area(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        manager.reconfigure("alpha", "mode1")  # alpha has no reserved areas
        with pytest.raises(ReconfigurationError, match="no free-compatible area"):
            manager.relocate("alpha")
        assert manager.trace.count(EventKind.REJECT) == 1

    def test_fault_masked_reconfigure_rejected(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        manager.reconfigure("beta", "mode1")
        manager.inject_fault(manager.current_location("beta"), detail="test fault")
        with pytest.raises(ReconfigurationError, match="fault-masked"):
            manager.reconfigure("beta", "mode2")
        assert manager.trace.count(EventKind.FAULT) == 1
        assert manager.trace.count(EventKind.REJECT) == 1
        assert manager.active_module("beta") == "mode1"

    def test_fault_masked_relocation_target_rejected(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        manager.reconfigure("beta", "mode1")
        targets = manager.available_relocation_targets("beta")
        assert targets
        manager.inject_fault(targets[0])
        # the masked rectangle vanishes from the available targets...
        assert targets[0] not in manager.available_relocation_targets("beta")
        # ...and an explicit request for it is rejected
        with pytest.raises(ReconfigurationError, match="fault-masked"):
            manager.relocate("beta", target=targets[0])

    def test_clear_faults_restores_operation(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        manager.reconfigure("beta", "mode1")
        manager.inject_fault(manager.current_location("beta"))
        assert manager.faulty_rects
        manager.clear_faults()
        assert not manager.faulty_rects
        manager.reconfigure("beta", "mode2")
        assert manager.active_module("beta") == "mode2"


class TestTimedTrace:
    def test_clock_hook_stamps_trace_events(self, managed_floorplan):
        times = iter([1.5, 2.5, 4.0])
        manager = ReconfigurationManager(
            managed_floorplan, clock=lambda: next(times)
        )
        manager.reconfigure("beta", "mode1")
        manager.reconfigure("beta", "mode2")
        manager.relocate("beta")
        assert [event.time for event in manager.trace] == [1.5, 2.5, 4.0]

    def test_untimed_managers_record_time_zero(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        manager.reconfigure("beta", "mode1")
        assert manager.trace.events[0].time == 0.0
