"""Tests of the run-time manager, scheduler and trace."""

import pytest

from repro.runtime import (
    EventKind,
    ModeSchedule,
    ReconfigurationManager,
    RuntimeError_,
    round_robin_schedule,
)
from repro.runtime.scheduler import random_schedule


@pytest.fixture(scope="module")
def managed_floorplan(tiny_relocation_solution):
    report, _ = tiny_relocation_solution
    return report.floorplan


class TestScheduler:
    def test_round_robin(self):
        schedule = round_robin_schedule(["A", "B"], modes_per_region=2, rounds=3)
        assert len(schedule) == 6
        assert schedule.regions() == ["A", "B"]
        assert schedule.activations_per_region() == {"A": 3, "B": 3}

    def test_random_schedule_is_seeded(self):
        a = random_schedule(["A", "B"], length=10, seed=5)
        b = random_schedule(["A", "B"], length=10, seed=5)
        assert a.steps == b.steps
        with pytest.raises(ValueError):
            random_schedule([], length=3)


class TestManager:
    def test_requires_complete_floorplan(self, tiny_problem):
        from repro.floorplan.placement import Floorplan

        with pytest.raises(RuntimeError_):
            ReconfigurationManager(Floorplan(problem=tiny_problem))

    def test_configure_then_reconfigure(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        first = manager.reconfigure("beta", "mode1")
        assert manager.active_module("beta") == "mode1"
        assert manager.memory.verify(first)
        manager.reconfigure("beta", "mode2")
        assert manager.active_module("beta") == "mode2"
        assert manager.trace.count(EventKind.CONFIGURE) == 1
        assert manager.trace.count(EventKind.RECONFIGURE) == 1

    def test_relocate_uses_reserved_area(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        manager.reconfigure("beta", "mode1")
        home = manager.current_location("beta")
        targets = manager.available_relocation_targets("beta")
        assert targets, "the floorplan reserved a free-compatible area for beta"
        relocated = manager.relocate("beta")
        assert manager.current_location("beta") != home
        assert manager.memory.verify(relocated)
        assert manager.trace.count(EventKind.RELOCATE) == 1
        # moving back home also works
        manager.return_home("beta")
        assert manager.current_location("beta") == home

    def test_relocate_without_loaded_module_rejected(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        with pytest.raises(RuntimeError_):
            manager.relocate("beta")

    def test_relocate_without_reserved_area_rejected(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        manager.reconfigure("alpha", "mode1")  # alpha has no reserved areas
        with pytest.raises(RuntimeError_):
            manager.relocate("alpha")
        assert manager.trace.count(EventKind.REJECT) == 1

    def test_unknown_region_rejected(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        with pytest.raises(RuntimeError_):
            manager.reconfigure("nope", "mode1")

    def test_schedule_replay_counts_frames(self, managed_floorplan):
        manager = ReconfigurationManager(managed_floorplan)
        schedule = round_robin_schedule(list(managed_floorplan.placements), rounds=2)
        for region, mode in schedule:
            manager.reconfigure(region, mode)
        summary = manager.trace.summary()
        assert summary["configure"] == len(managed_floorplan.placements)
        assert summary["reconfigure"] == len(schedule) - len(managed_floorplan.placements)
        assert summary["frames_written"] > 0
        assert len(manager.trace) == len(schedule)


class TestAvailableRelocationTargets:
    """Occupied-area exclusion in ``available_relocation_targets``."""

    @pytest.fixture()
    def crowded_manager(self, two_type_device):
        from repro.device.resources import ResourceVector
        from repro.floorplan.geometry import Rect
        from repro.floorplan.placement import Floorplan
        from repro.floorplan.problem import FloorplanProblem, Region

        regions = [
            Region("A", ResourceVector(CLB=4)),
            Region("B", ResourceVector(CLB=4)),
        ]
        problem = FloorplanProblem(two_type_device, regions, name="targets")
        # A and B each get a reserved area, but both reservations share ONE
        # rectangle — whoever relocates first occupies it for the other
        shared = Rect(2, 0, 2, 2)
        floorplan = Floorplan.from_rects(
            problem,
            {"A": Rect(0, 0, 2, 2), "B": Rect(5, 0, 2, 2)},
            free_rects={"A 1": (shared, "A"), "B 1": (shared, "B")},
        )
        manager = ReconfigurationManager(floorplan)
        manager.reconfigure("A", "m1")
        manager.reconfigure("B", "m1")
        return manager, shared

    def test_free_area_visible_while_unoccupied(self, crowded_manager):
        manager, shared = crowded_manager
        assert manager.available_relocation_targets("A") == [shared]
        assert manager.available_relocation_targets("B") == [shared]

    def test_area_occupied_by_other_region_is_excluded(self, crowded_manager):
        manager, shared = crowded_manager
        manager.relocate("A", target=shared)
        # B's only reserved area is now hosting A's module
        assert manager.available_relocation_targets("B") == []
        # ...and A's own current rectangle is excluded from its own targets
        assert manager.available_relocation_targets("A") == []
        with pytest.raises(RuntimeError_):
            manager.relocate("B")

    def test_area_freed_again_after_return_home(self, crowded_manager):
        manager, shared = crowded_manager
        manager.relocate("A", target=shared)
        manager.return_home("A")
        assert manager.available_relocation_targets("B") == [shared]

    def test_unsatisfied_soft_area_is_excluded(self, crowded_manager):
        from repro.floorplan.geometry import Rect
        from repro.floorplan.placement import RegionPlacement

        manager, shared = crowded_manager
        manager.floorplan.free_areas["B 2"] = RegionPlacement(
            name="B 2", rect=Rect(7, 0, 2, 2), compatible_with="B", satisfied=False
        )
        assert manager.available_relocation_targets("B") == [shared]
