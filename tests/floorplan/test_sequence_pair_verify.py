"""Unit tests for sequence pairs and the independent verifier."""

import pytest

from repro.device import ResourceVector, simple_two_type_device, synthetic_device
from repro.floorplan import (
    Connection,
    Floorplan,
    FloorplanProblem,
    Rect,
    Region,
    SequencePair,
    verify_floorplan,
)
from repro.floorplan.placement import RegionPlacement
from repro.floorplan.sequence_pair import (
    RELATION_ABOVE,
    RELATION_BELOW,
    RELATION_LEFT,
    RELATION_RIGHT,
)


class TestSequencePair:
    def test_extraction_from_disjoint_rects(self):
        rects = {
            "A": Rect(0, 0, 2, 2),
            "B": Rect(3, 0, 2, 2),   # right of A
            "C": Rect(0, 3, 2, 2),   # above A
        }
        pair = SequencePair.from_rects(rects)
        assert pair.relation("A", "B") == RELATION_LEFT
        assert pair.relation("B", "A") == RELATION_RIGHT
        assert pair.relation("A", "C") in (RELATION_BELOW, RELATION_LEFT)
        assert pair.is_consistent_with(rects)

    def test_relations_cover_all_pairs(self):
        rects = {"A": Rect(0, 0, 1, 1), "B": Rect(2, 0, 1, 1), "C": Rect(4, 0, 1, 1)}
        pair = SequencePair.from_rects(rects)
        assert len(pair.relations()) == 6

    def test_overlapping_rects_rejected(self):
        with pytest.raises(ValueError):
            SequencePair.from_rects({"A": Rect(0, 0, 2, 2), "B": Rect(1, 1, 2, 2)})

    def test_mismatched_sequences_rejected(self):
        with pytest.raises(ValueError):
            SequencePair(("A", "B"), ("A", "C"))
        with pytest.raises(ValueError):
            SequencePair(("A", "A"), ("A", "A"))

    def test_self_relation_rejected(self):
        pair = SequencePair(("A", "B"), ("A", "B"))
        with pytest.raises(ValueError):
            pair.relation("A", "A")

    def test_extraction_from_cycle_inducing_placement(self):
        # Regression: resolving each diagonal pair in isolation (horizontal
        # always winning) made the combined Gamma- order cyclic for this
        # valid tessellation placement, crashing the HO seeder.
        rects = {
            "R2": Rect(0, 0, 8, 1),
            "R0": Rect(5, 1, 7, 1),
            "R1": Rect(0, 2, 6, 1),
            "R3": Rect(9, 0, 3, 1),
        }
        pair = SequencePair.from_rects(rects)
        assert pair.is_consistent_with(rects)
        assert len(pair.relations()) == 12

    def test_semantics_of_hand_built_pair(self):
        # A before B in both -> left; C after B in plus, before in minus -> below
        pair = SequencePair(("A", "B", "C"), ("C", "A", "B"))
        assert pair.relation("A", "B") == RELATION_LEFT
        assert pair.relation("C", "B") == RELATION_BELOW
        assert pair.relation("B", "C") == RELATION_ABOVE


@pytest.fixture()
def verifier_problem():
    device = synthetic_device(10, 4, bram_every=4, dsp_every=7, name="verify-dev")
    regions = [
        Region("A", ResourceVector(CLB=4)),
        Region("B", ResourceVector(CLB=2, BRAM=1)),
    ]
    return FloorplanProblem(device, regions, [Connection("A", "B")], name="verify")


class TestVerifier:
    def test_feasible_floorplan_passes(self, verifier_problem):
        floorplan = Floorplan.from_rects(
            verifier_problem,
            {"A": Rect(0, 0, 2, 2), "B": Rect(2, 0, 3, 1)},
        )
        report = verify_floorplan(floorplan)
        assert report.is_feasible and bool(report)
        assert "feasible" in report.summary()

    def test_missing_region_detected(self, verifier_problem):
        floorplan = Floorplan.from_rects(verifier_problem, {"A": Rect(0, 0, 2, 2)})
        report = verify_floorplan(floorplan)
        assert not report.is_feasible
        assert any("no placement" in v for v in report.violations)

    def test_overlap_detected(self, verifier_problem):
        floorplan = Floorplan.from_rects(
            verifier_problem,
            {"A": Rect(0, 0, 3, 2), "B": Rect(2, 0, 3, 2)},
        )
        report = verify_floorplan(floorplan)
        assert any("overlap" in v for v in report.violations)

    def test_out_of_bounds_detected(self, verifier_problem):
        floorplan = Floorplan.from_rects(
            verifier_problem,
            {"A": Rect(8, 0, 4, 2), "B": Rect(0, 0, 2, 1)},
        )
        report = verify_floorplan(floorplan)
        assert any("exceeds device bounds" in v for v in report.violations)

    def test_resource_shortfall_detected(self, verifier_problem):
        floorplan = Floorplan.from_rects(
            verifier_problem,
            # B gets no BRAM column
            {"A": Rect(0, 0, 2, 2), "B": Rect(5, 0, 2, 1)},
        )
        report = verify_floorplan(floorplan)
        assert any("lacks resources" in v for v in report.violations)

    def test_forbidden_overlap_detected(self):
        device = synthetic_device(8, 4, forbidden_blocks=1, seed=1, name="forbid-dev")
        rect = device.forbidden[0]
        problem = FloorplanProblem(device, [Region("A", ResourceVector(CLB=1))])
        floorplan = Floorplan.from_rects(
            problem, {"A": Rect(rect.col, rect.row, 1, 1)}
        )
        report = verify_floorplan(floorplan)
        assert any("forbidden" in v for v in report.violations)

    def test_incompatible_free_area_detected(self, verifier_problem):
        floorplan = Floorplan.from_rects(
            verifier_problem,
            {"A": Rect(0, 0, 2, 2), "B": Rect(2, 0, 3, 1)},
            # the claimed free area covers the DSP column: wrong layout for B
            {"B 1": (Rect(5, 2, 3, 1), "B")},
        )
        report = verify_floorplan(floorplan)
        assert any("not compatible" in v for v in report.violations)

    def test_unsatisfied_soft_area_is_warning_not_violation(self, verifier_problem):
        floorplan = Floorplan.from_rects(
            verifier_problem,
            {"A": Rect(0, 0, 2, 2), "B": Rect(2, 0, 3, 1)},
        )
        floorplan.free_areas["B 1"] = RegionPlacement(
            "B 1", Rect(0, 3, 2, 1), compatible_with="B", satisfied=False
        )
        report = verify_floorplan(floorplan)
        assert report.is_feasible
        assert report.warnings

    def test_valid_free_area_accepted(self, verifier_problem):
        floorplan = Floorplan.from_rects(
            verifier_problem,
            {"A": Rect(0, 0, 2, 2), "B": Rect(2, 0, 3, 1)},
            # same columns (2..4, BRAM at 4), different row -> compatible and free
            {"B 1": (Rect(2, 2, 3, 1), "B")},
        )
        report = verify_floorplan(floorplan)
        assert report.is_feasible

    def test_region_cap_violation_detected(self):
        device = simple_two_type_device()
        problem = FloorplanProblem(
            device, [Region("A", ResourceVector(CLB=2), max_width=1)]
        )
        floorplan = Floorplan.from_rects(problem, {"A": Rect(0, 0, 2, 1)})
        report = verify_floorplan(floorplan)
        assert any("wider than its cap" in v for v in report.violations)
