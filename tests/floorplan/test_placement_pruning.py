"""Unit tests of the vectorized feasible-placement enumerator."""

import numpy as np
import pytest

from repro.device.catalog import synthetic_device
from repro.device.grid import FPGADevice, ForbiddenRect
from repro.device.resources import ResourceVector
from repro.floorplan.milp_builder import (
    AreaSpec,
    PlacementMasks,
    build_floorplan_milp,
    feasible_placement_masks,
)
from repro.floorplan.problem import FloorplanProblem, Region


def _brute_force_masks(device: FPGADevice, area: AreaSpec) -> PlacementMasks:
    """Reference enumeration: per-cell loops, no prefix sums."""
    width, height = device.width, device.height
    wmax = min(width, area.max_width or width)
    hmax = min(height, area.max_height or height)
    col_cover = np.zeros(width, dtype=bool)
    col_start = np.zeros(width, dtype=bool)
    row_cover = np.zeros(height, dtype=bool)
    row_start = np.zeros(height, dtype=bool)
    candidates = 0
    requirements = [(rt, req) for rt, req in area.requirements if req > 0]
    for w in range(1, wmax + 1):
        for h in range(1, hmax + 1):
            for x in range(width - w + 1):
                for y in range(height - h + 1):
                    cells = [
                        (c, r) for c in range(x, x + w) for r in range(y, y + h)
                    ]
                    if any(device.is_forbidden(c, r) for c, r in cells):
                        continue
                    ok = True
                    if not area.is_free_area:
                        for rtype, required in requirements:
                            supply = sum(
                                device.tile_type_at(c, r).resources.get(rtype)
                                for c, r in cells
                            )
                            if supply < required:
                                ok = False
                                break
                    if not ok:
                        continue
                    candidates += 1
                    col_start[x] = True
                    row_start[y] = True
                    col_cover[x : x + w] = True
                    row_cover[y : y + h] = True
    return PlacementMasks(col_cover, col_start, row_cover, row_start, candidates)


def _assert_masks_equal(fast: PlacementMasks, slow: PlacementMasks) -> None:
    np.testing.assert_array_equal(fast.col_cover, slow.col_cover)
    np.testing.assert_array_equal(fast.col_start, slow.col_start)
    np.testing.assert_array_equal(fast.row_cover, slow.row_cover)
    np.testing.assert_array_equal(fast.row_start, slow.row_start)


class TestMaskCorrectness:
    @pytest.mark.parametrize(
        "spec",
        [
            AreaSpec("clb", ResourceVector(CLB=4)),
            AreaSpec("bram", ResourceVector(BRAM=2), max_width=2),
            AreaSpec("dsp_tall", ResourceVector(DSP=3), max_width=1),
            AreaSpec("mixed", ResourceVector(CLB=3, DSP=1), max_width=3, max_height=4),
            AreaSpec("free", ResourceVector.zero(), compatible_with="clb"),
        ],
        ids=lambda s: s.name,
    )
    def test_matches_brute_force(self, spec):
        device = synthetic_device(14, 6, bram_every=5, dsp_every=9, name="mask-dev")
        _assert_masks_equal(
            feasible_placement_masks(device, spec),
            _brute_force_masks(device, spec),
        )

    def test_matches_brute_force_with_forbidden_block(self):
        device = synthetic_device(
            12, 6, bram_every=5, dsp_every=9, name="mask-forbid-dev"
        )
        blocked = FPGADevice(
            "mask-forbid",
            [[device.tile_type_at(c, r) for r in range(6)] for c in range(12)],
            forbidden=[ForbiddenRect("blk", col=2, row=1, width=3, height=3)],
        )
        spec = AreaSpec("clb", ResourceVector(CLB=6), max_width=4)
        _assert_masks_equal(
            feasible_placement_masks(blocked, spec),
            _brute_force_masks(blocked, spec),
        )

    def test_candidate_count_matches_brute_force(self):
        device = synthetic_device(10, 5, bram_every=4, dsp_every=9, name="count-dev")
        spec = AreaSpec("r", ResourceVector(CLB=3, BRAM=1), max_width=3)
        fast = feasible_placement_masks(device, spec)
        slow = _brute_force_masks(device, spec)
        assert fast.candidates == slow.candidates > 0

    def test_work_limit_disables_pruning(self):
        device = synthetic_device(10, 5, bram_every=4, dsp_every=9, name="limit-dev")
        spec = AreaSpec("r", ResourceVector(CLB=3))
        masks = feasible_placement_masks(device, spec, work_limit=1)
        assert not masks.prunes_anything
        assert masks.candidates == -1

    def test_unsatisfiable_requirements_prune_everything(self):
        device = synthetic_device(10, 5, bram_every=4, dsp_every=9, name="empty-dev")
        spec = AreaSpec("r", ResourceVector(DSP=10_000), max_width=2)
        masks = feasible_placement_masks(device, spec)
        assert not masks.col_cover.any()
        assert masks.candidates == 0


class TestBuilderIntegration:
    def test_variable_families_keep_their_shape(self):
        device = synthetic_device(12, 5, bram_every=4, dsp_every=9, name="shape-dev")
        problem = FloorplanProblem(
            device,
            [Region("A", ResourceVector(DSP=2), max_width=1)],
            name="shape",
        )
        milp = build_floorplan_milp(problem, prune=True)
        assert len(milp.col_cover["A"]) == device.width
        assert len(milp.row_cover["A"]) == device.height
        assert len(milp.k["A"]) == problem.partition.num_portions
        assert len(milp.l["A"]) == problem.partition.num_portions

    def test_pruned_variables_are_fixed_to_zero(self):
        device = synthetic_device(12, 5, bram_every=4, dsp_every=9, name="fix-dev")
        problem = FloorplanProblem(
            device,
            [Region("A", ResourceVector(DSP=2), max_width=1)],
            name="fix",
        )
        milp = build_floorplan_milp(problem, prune=True)
        masks = feasible_placement_masks(device, milp.areas[0])
        assert masks.prunes_anything
        for j, var in enumerate(milp.col_cover["A"]):
            assert var.ub == (1.0 if masks.col_cover[j] else 0.0)

    def test_infeasible_region_makes_model_infeasible(self):
        from repro.milp import SolveStatus, SolverOptions, solve

        device = synthetic_device(20, 4, bram_every=4, dsp_every=9, name="inf-dev")
        # more DSP than a single column can supply, but the width cap allows
        # only one column: geometrically infeasible while the aggregate
        # demand still fits the device
        from repro.device.resources import ResourceType

        per_column = sum(
            device.tile_type_at(9, r).resources.get(ResourceType.DSP)
            for r in range(device.height)
        )
        assert per_column > 0
        problem = FloorplanProblem(
            device,
            [Region("A", ResourceVector(DSP=per_column + 1), max_width=1)],
            name="inf",
        )
        for prune in (False, True):
            milp = build_floorplan_milp(problem, prune=prune)
            result = solve(milp.model, SolverOptions(time_limit=60))
            assert result.status is SolveStatus.INFEASIBLE

    def test_prune_stats_disabled_when_off(self):
        device = synthetic_device(10, 4, bram_every=4, dsp_every=9, name="off-dev")
        problem = FloorplanProblem(
            device, [Region("A", ResourceVector(CLB=3))], name="off"
        )
        milp = build_floorplan_milp(problem, prune=False)
        assert milp.prune_stats == {}
