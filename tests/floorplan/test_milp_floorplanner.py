"""Integration-style tests of the MILP floorplanner (O and HO modes).

These tests use the small session-scoped problems of ``conftest.py`` so the
solver runs stay in the seconds range.
"""

import pytest

from repro.floorplan import FloorplanSolver, ObjectiveWeights
from repro.floorplan.milp_builder import AreaSpec, build_floorplan_milp
from repro.floorplan.ho import HOSeeder
from repro.milp import SolveStatus


class TestMilpBuilder:
    def test_variable_families_present(self, tiny_problem):
        milp = build_floorplan_milp(tiny_problem)
        for region in tiny_problem.region_names:
            assert len(milp.col_cover[region]) == tiny_problem.device.width
            assert len(milp.row_cover[region]) == tiny_problem.device.height
            assert len(milp.k[region]) == tiny_problem.partition.num_portions
            assert len(milp.l[region]) == tiny_problem.partition.num_portions
        stats = milp.model.stats()
        assert stats.num_binary > 0 and stats.num_constraints > 0

    def test_duplicate_area_names_rejected(self, tiny_problem):
        from repro.device.resources import ResourceVector

        with pytest.raises(ValueError):
            build_floorplan_milp(
                tiny_problem,
                extra_areas=[AreaSpec("alpha", ResourceVector.zero(), compatible_with="beta")],
            )

    def test_fixed_relations_skip_disjunction_binaries(self, tiny_problem):
        free = build_floorplan_milp(tiny_problem)
        fixed = build_floorplan_milp(
            tiny_problem,
            fixed_relations={("alpha", "beta"): "left", ("alpha", "gamma"): "left",
                             ("beta", "gamma"): "below"},
        )
        assert fixed.model.stats().num_binary < free.model.stats().num_binary
        assert not fixed.rel_dirs and len(free.rel_dirs) == 3


class TestOMode:
    def test_solution_is_verified_feasible(self, tiny_solution):
        assert tiny_solution.verification is not None
        assert tiny_solution.verification.is_feasible
        assert tiny_solution.floorplan.is_complete

    def test_every_region_covers_its_resources(self, tiny_solution):
        floorplan = tiny_solution.floorplan
        device = floorplan.device
        for name, placement in floorplan.placements.items():
            region = floorplan.problem.region_by_name(name)
            assert placement.covered_resources(device).covers(region.requirements)

    def test_metrics_reported(self, tiny_solution):
        metrics = tiny_solution.metrics
        assert metrics is not None
        assert metrics.wasted_frames >= 0
        assert metrics.covered_frames >= metrics.required_frames

    def test_extracted_objective_matches_solver(self, tiny_solution):
        assert tiny_solution.floorplan.objective == pytest.approx(
            tiny_solution.solution.objective, abs=1e-6
        )

    def test_infeasible_instance_detected(self, small_device, fast_options):
        from repro.device.resources import ResourceVector
        from repro.floorplan.problem import FloorplanProblem, Region

        # demand every CLB tile in a single region plus another region: the
        # aggregate fits but the max-width cap makes it geometrically impossible
        problem = FloorplanProblem(
            small_device,
            [
                Region("big", ResourceVector(CLB=20), max_width=2, max_height=2),
            ],
            name="impossible",
        )
        report = FloorplanSolver(problem, options=fast_options).solve()
        assert report.solution.status is SolveStatus.INFEASIBLE
        assert not report.feasible

    def test_lexicographic_solve_does_not_worsen_area(self, tiny_problem, fast_options):
        plain = FloorplanSolver(tiny_problem, options=fast_options).solve(
            weights=ObjectiveWeights(wirelength=0.0, wasted_frames=1.0)
        )
        lex = FloorplanSolver(tiny_problem, options=fast_options).solve(
            lexicographic=True
        )
        assert lex.metrics is not None and plain.metrics is not None
        assert lex.metrics.wasted_frames <= plain.metrics.wasted_frames + 1e-6

    def test_lexicographic_solve_is_verified_and_caps_area(
        self, tiny_problem, fast_options
    ):
        report = FloorplanSolver(tiny_problem, options=fast_options).solve(
            lexicographic=True
        )
        # phase 2 must return a verified-feasible floorplan...
        assert report.feasible
        assert report.verification.is_feasible
        assert report.metrics is not None
        # ...solved against the phase-1 area cap added to the model
        names = [constraint.name for constraint in report.milp.model.constraints]
        assert "lex_area_cap" in names

    def test_lexicographic_matches_area_optimum(self, tiny_problem, fast_options):
        area_only = FloorplanSolver(
            tiny_problem, options=fast_options.replace(mip_gap=None)
        ).solve(weights=ObjectiveWeights(wirelength=0.0, wasted_frames=1.0))
        lex = FloorplanSolver(
            tiny_problem, options=fast_options.replace(mip_gap=None)
        ).solve(lexicographic=True)
        # with both phases solved to optimality, the lexicographic wasted-frame
        # count equals the pure area optimum (the Section VI protocol)
        assert lex.metrics.wasted_frames == area_only.metrics.wasted_frames

    def test_invalid_mode_rejected(self, tiny_problem):
        with pytest.raises(ValueError):
            FloorplanSolver(tiny_problem, mode="X")


class TestHOMode:
    def test_ho_seed_matches_sequence_pair(self, tiny_problem):
        seeder = HOSeeder(tiny_problem)
        seed = seeder.build_seed()
        rects = {p.name: p.rect for p in seed.floorplan.all_placements()}
        assert seed.sequence_pair.is_consistent_with(rects)

    def test_ho_solves_and_verifies(self, tiny_problem, fast_options):
        report = FloorplanSolver(tiny_problem, mode="HO", options=fast_options).solve()
        assert report.solution.status.has_solution
        assert report.verification.is_feasible
        assert report.floorplan.metadata.get("ho_seed_status")

    def test_ho_not_worse_than_its_seed(self, tiny_problem, fast_options):
        from repro.floorplan.metrics import evaluate_floorplan

        seeder = HOSeeder(tiny_problem)
        seed = seeder.build_seed()
        seed_metrics = evaluate_floorplan(seed.floorplan)
        report = FloorplanSolver(tiny_problem, mode="HO", options=fast_options).solve(
            weights=ObjectiveWeights(wirelength=0.0, wasted_frames=1.0)
        )
        assert report.metrics.wasted_frames <= seed_metrics.wasted_frames + 1e-6
