"""Unit tests for geometry, problem description, placements and metrics."""

import pytest

from repro.device import ResourceVector, simple_two_type_device
from repro.floorplan import (
    Connection,
    Floorplan,
    FloorplanProblem,
    IOPin,
    Rect,
    Region,
    evaluate_floorplan,
)
from repro.floorplan.geometry import half_perimeter_wirelength, manhattan, total_overlap_area
from repro.floorplan.metrics import ObjectiveWeights, wasted_frames, wirelength
from repro.floorplan.placement import RegionPlacement


class TestRect:
    def test_basic_properties(self):
        rect = Rect(2, 1, 3, 2)
        assert rect.col_end == 4 and rect.row_end == 2
        assert rect.area == 6 and rect.perimeter == 10
        assert rect.center == (3.0, 1.5)

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 1)

    def test_contains_and_cells(self):
        rect = Rect(1, 1, 2, 2)
        assert rect.contains(2, 2) and not rect.contains(3, 1)
        assert len(list(rect.cells())) == 4

    def test_overlap_and_intersection(self):
        a = Rect(0, 0, 3, 3)
        b = Rect(2, 2, 3, 3)
        c = Rect(3, 0, 2, 2)
        assert a.overlaps(b) and a.intersection_area(b) == 1
        assert not a.overlaps(c) and a.intersection_area(c) == 0

    def test_within_and_translate(self):
        rect = Rect(0, 0, 3, 2)
        assert rect.within(3, 2) and not rect.within(2, 2)
        moved = rect.translated(1, 1)
        assert (moved.col, moved.row) == (1, 1)

    def test_helpers(self):
        assert manhattan((0, 0), (2, 3)) == 5
        assert half_perimeter_wirelength([(0, 0), (2, 1), (1, 4)]) == 2 + 4
        assert half_perimeter_wirelength([]) == 0.0
        assert total_overlap_area([Rect(0, 0, 2, 2), Rect(1, 1, 2, 2), Rect(5, 5, 1, 1)]) == 1


@pytest.fixture()
def demo_problem():
    device = simple_two_type_device()
    regions = [
        Region("A", ResourceVector(CLB=4)),
        Region("B", ResourceVector(CLB=2, BRAM=1)),
    ]
    connections = [Connection("A", "B", weight=16), Connection("A", "IO0", weight=4)]
    pins = [IOPin("IO0", col=0, row=0)]
    return FloorplanProblem(device, regions, connections, pins, name="demo")


class TestProblem:
    def test_region_validation(self):
        with pytest.raises(ValueError):
            Region("", ResourceVector(CLB=1))
        with pytest.raises(ValueError):
            Region("empty", ResourceVector())

    def test_duplicate_region_names_rejected(self):
        device = simple_two_type_device()
        regions = [Region("A", ResourceVector(CLB=1))] * 2
        with pytest.raises(ValueError):
            FloorplanProblem(device, regions)

    def test_unknown_connection_endpoint_rejected(self):
        device = simple_two_type_device()
        regions = [Region("A", ResourceVector(CLB=1))]
        with pytest.raises(ValueError):
            FloorplanProblem(device, regions, [Connection("A", "missing")])

    def test_aggregate_demand_checked(self):
        device = simple_two_type_device()
        regions = [Region("huge", ResourceVector(DSP=1))]  # no DSP on this device
        with pytest.raises(ValueError):
            FloorplanProblem(device, regions)

    def test_connection_validation(self):
        with pytest.raises(ValueError):
            Connection("A", "A")
        with pytest.raises(ValueError):
            Connection("A", "B", weight=0)

    def test_required_frames(self, demo_problem):
        assert demo_problem.required_frames("A") == 4 * 36
        assert demo_problem.required_frames("B") == 2 * 36 + 30
        assert demo_problem.total_required_frames() == 4 * 36 + 2 * 36 + 30

    def test_lookups(self, demo_problem):
        assert demo_problem.region_by_name("A").name == "A"
        assert demo_problem.pin_by_name("IO0").col == 0
        with pytest.raises(KeyError):
            demo_problem.region_by_name("Z")
        assert demo_problem.connection_weight_total() == 20
        assert demo_problem.partition.num_portions > 1


class TestPlacementAndMetrics:
    def test_covered_resources_and_frames(self, demo_problem):
        device = demo_problem.device
        placement = RegionPlacement("A", Rect(0, 0, 2, 2))
        assert placement.covered_resources(device).as_dict() == {"CLB": 4}
        assert placement.covered_frames(device) == 4 * 36
        assert placement.covered_tiles_by_type(device) == {"CLB": 4}

    def test_floorplan_accessors(self, demo_problem):
        floorplan = Floorplan.from_rects(
            demo_problem,
            {"A": Rect(0, 0, 2, 2), "B": Rect(3, 0, 2, 2)},
            {"B 1": (Rect(3, 3, 2, 2), "B")},
        )
        assert floorplan.is_complete
        assert floorplan.placement_for("B 1").compatible_with == "B"
        assert floorplan.num_free_compatible_areas == 1
        assert len(floorplan.free_areas_for("B")) == 1
        assert len(floorplan.all_rects()) == 3
        with pytest.raises(KeyError):
            floorplan.placement_for("missing")
        payload = floorplan.to_dict()
        assert payload["placements"]["A"]["width"] == 2
        # to_dict / from_dict round-trip preserves every placement
        restored = Floorplan.from_dict(demo_problem, payload)
        assert restored.placements.keys() == floorplan.placements.keys()
        assert restored.free_areas.keys() == floorplan.free_areas.keys()
        for placement in floorplan.all_placements():
            other = restored.placement_for(placement.name)
            assert other.rect == placement.rect
            assert other.compatible_with == placement.compatible_with
            assert other.satisfied == placement.satisfied
        assert restored.solver_status == floorplan.solver_status

    def test_metrics_values(self, demo_problem):
        floorplan = Floorplan.from_rects(
            demo_problem,
            # B covers the BRAM column (col 4) plus CLB cols 3 and 5
            {"A": Rect(0, 0, 2, 2), "B": Rect(3, 0, 3, 1)},
        )
        # wirelength: centres A=(0.5,0.5), B=(4,0) -> 16*(3.5+0.5); pin IO0 at (0,0)
        assert wirelength(floorplan) == pytest.approx(16 * 4.0 + 4 * 1.0)
        # wasted frames: A exact, B covers 2 CLB + 1 BRAM = required -> 0 waste
        assert wasted_frames(floorplan) == 0
        metrics = evaluate_floorplan(floorplan)
        assert metrics.wasted_frames == 0
        assert metrics.covered_frames == metrics.required_frames
        assert metrics.free_compatible_areas == 0

    def test_objective_weights_validation(self):
        with pytest.raises(ValueError):
            ObjectiveWeights(wirelength=-1)
        defaults = ObjectiveWeights.paper_default()
        assert defaults.wasted_frames >= defaults.wirelength

    def test_missing_endpoint_placement_raises(self, demo_problem):
        floorplan = Floorplan.from_rects(demo_problem, {"A": Rect(0, 0, 2, 2)})
        with pytest.raises(KeyError):
            wirelength(floorplan)
