"""End-to-end observability: one trace id across router → replica → solver,
and the full capture→replay round trip, over a real 2-replica subprocess
fleet.

The fleet fixture is module-scoped (replica start-up dominates); tests use
distinct payload indices so cache state never couples them.
"""

import asyncio

import pytest

from repro.fleet import BackgroundFleet
from repro.obs.capture import build_capture, capture_schedule, fetch_trace_docs
from repro.server.loadgen import (
    GatewayClient,
    closed_loop,
    demo_payloads,
    replay_loop,
)
from repro.server.protocol import job_from_dict
from repro.sim.traffic import TraceReplayTraffic

#: wall-clock tolerance when comparing instants across two processes (their
#: traces anchor time.time() independently; same host, so skew is tiny)
CROSS_PROCESS_EPS = 0.25
#: tolerance within one process's fragment (pure float round-off)
IN_PROCESS_EPS = 1e-6


@pytest.fixture(scope="module")
def payloads():
    return demo_payloads(unique=6, time_limit=20.0)


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("obs-fleet-cache")
    with BackgroundFleet(replicas=2, cache_dir=str(cache_dir)) as running:
        yield running


async def fetch_json(host, port, path):
    async with GatewayClient(host, port) as client:
        return await client.request("GET", path)


def spans_by_id(doc):
    return {span["span_id"]: span for span in doc["spans"]}


def assert_nested(doc, eps):
    """Every span with an in-fragment parent lies within the parent's window."""
    table = spans_by_id(doc)
    checked = 0
    for span in doc["spans"]:
        parent = table.get(span.get("parent_id"))
        if parent is None:
            continue
        assert parent["start"] - eps <= span["start"], (span["name"], parent["name"])
        assert span["end"] <= parent["end"] + eps, (span["name"], parent["name"])
        assert span["start"] <= span["end"] + eps, span["name"]
        checked += 1
    return checked


class TestOneTraceAcrossTheFleet:
    def test_trace_id_spans_router_replica_and_solver(self, fleet, payloads):
        fingerprint = job_from_dict(payloads[0]).fingerprint

        async def scenario():
            async with GatewayClient(fleet.host, fleet.port, client_id="obs") as client:
                status, body = await client.solve(payloads[0])
                assert status == 200, body
            # the router's fragment names the trace
            status, listing = await fetch_json(
                fleet.host, fleet.port, "/debug/traces?full=1&limit=5"
            )
            assert status == 200
            router_doc = next(
                doc for doc in listing["traces"]
                if doc["metadata"].get("fingerprint") == fingerprint
            )
            trace_id = router_doc["trace_id"]
            root = router_doc["spans"][0]
            assert root["name"] == "router.request"
            names = [span["name"] for span in router_doc["spans"]]
            assert "router.decode" in names and "router.forward" in names
            assert assert_nested(router_doc, IN_PROCESS_EPS) >= 2

            # exactly one replica (the ring owner) carries the same trace id
            fragments = []
            for port in fleet.manager.ports:
                status, doc = await fetch_json(
                    fleet.host, port, f"/debug/traces/{trace_id}"
                )
                if status == 200:
                    fragments.append((port, doc))
            assert len(fragments) == 1
            owner_port, replica_doc = fragments[0]
            owner_node = fleet.router.ring.owner(fingerprint)
            assert owner_port == int(owner_node.rsplit(":", 1)[1])

            # the replica fragment hangs off the router's root span ...
            assert replica_doc["remote_parent"] == root["span_id"]
            gateway_root = replica_doc["spans"][0]
            assert gateway_root["name"] == "gateway.request"
            assert gateway_root["parent_id"] == root["span_id"]
            # ... and includes the solver stages as spans of the solve
            replica_names = [span["name"] for span in replica_doc["spans"]]
            assert "gateway.solve" in replica_names
            assert "milp.search" in replica_names
            assert any(name.startswith("floorplan.") for name in replica_names)

            # span timestamps nest monotonically, within and across processes
            assert assert_nested(replica_doc, IN_PROCESS_EPS) >= 5
            assert gateway_root["start"] >= root["start"] - CROSS_PROCESS_EPS
            assert replica_doc["metadata"]["fingerprint"] == fingerprint

        asyncio.run(scenario())

    def test_response_carries_the_trace_header(self, fleet, payloads):
        # GatewayClient drops response headers, so speak raw HTTP here
        async def scenario():
            import json as jsonlib

            reader, writer = await asyncio.open_connection(fleet.host, fleet.port)
            body = jsonlib.dumps(payloads[1]).encode()
            writer.write(
                b"POST /solve HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            await writer.drain()
            raw = await reader.read(-1)
            writer.close()
            head = raw.split(b"\r\n\r\n", 1)[0].decode("latin-1").lower()
            assert "x-repro-trace:" in head

        asyncio.run(scenario())


class TestCaptureReplayRoundTrip:
    def test_loadgen_capture_sim_and_replay_agree(self, fleet, payloads):
        replay_payloads = payloads[2:5]

        # 1. production traffic: a closed-loop run through the router
        result = asyncio.run(
            closed_loop(fleet.host, fleet.port, replay_payloads,
                        clients=2, requests_per_client=3)
        )
        assert result.ok == result.sent == 6

        # 2. capture: export the router's traces into a capture document
        docs = fetch_trace_docs(fleet.host, fleet.port, limit=100)
        replay_fingerprints = {
            job_from_dict(payload).fingerprint for payload in replay_payloads
        }
        docs = [
            doc for doc in docs
            if doc["metadata"].get("fingerprint") in replay_fingerprints
        ]
        capture = build_capture(docs, source="test")
        captured = [request["fingerprint"] for request in capture["requests"]]
        assert len(captured) == 6
        offsets = [request["offset"] for request in capture["requests"]]
        assert offsets == sorted(offsets)

        # 3a. simulator replay: same sequence, same relative cadence
        schedule = capture_schedule(capture)
        sim_requests = TraceReplayTraffic.from_capture(capture).generate(3600.0)
        assert len(sim_requests) == 6
        assert [request.mode for request in sim_requests] == [
            f"fp-{fingerprint[:12]}" for fingerprint in captured
        ]
        assert [round(r.time, 6) for r in sim_requests] == [
            round(t, 6) for t, _r, _m in schedule.timed_steps()
        ]

        # 3b. loadgen replay: the same request sequence re-executes
        outcome = asyncio.run(
            replay_loop(fleet.host, fleet.port, capture, replay_payloads)
        )
        assert outcome.skipped == []
        assert outcome.executed == captured
        assert outcome.result.ok == 6
        # replayed jobs were all solved before: served from cache end to end
        assert outcome.result.hits == 6
