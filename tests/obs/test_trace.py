"""Unit tests for the trace/span model, header propagation, and stage hooks."""

import json
import threading

import pytest

from repro.obs.trace import (
    TRACE_HEADER,
    Span,
    Trace,
    collect_stages,
    format_trace_header,
    new_id,
    parse_trace_header,
    record_stage,
    stage_timer,
    summarize_trace_doc,
)


class TestHeader:
    def test_round_trip_with_parent(self):
        header = format_trace_header("abc123", "def456")
        assert parse_trace_header(header) == ("abc123", "def456")

    def test_round_trip_without_parent(self):
        assert parse_trace_header(format_trace_header("abc123")) == ("abc123", None)

    @pytest.mark.parametrize("value", [None, "", "not hex!", "x" * 65])
    def test_malformed_values_never_raise(self, value):
        assert parse_trace_header(value) == (None, None)

    def test_bad_parent_is_dropped_but_id_kept(self):
        trace_id, parent = parse_trace_header("ab12:" + "y" * 70)
        assert trace_id == "ab12" and parent is None

    def test_header_name_is_stable(self):
        # the wire contract: changing this breaks cross-version fleets
        assert TRACE_HEADER == "X-Repro-Trace"


class TestTrace:
    def test_begin_continues_remote_trace(self):
        trace = Trace.begin("cafe01:beef02", origin="gateway")
        assert trace.trace_id == "cafe01"
        assert trace.remote_parent == "beef02"

    def test_begin_mints_when_no_header(self):
        trace = Trace.begin(None, origin="router")
        assert trace.trace_id and trace.remote_parent is None

    def test_span_nesting_and_document(self):
        trace = Trace.begin(None)
        with trace.span("outer") as outer:
            with trace.span("inner", parent=outer, detail=7) as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.start <= inner.start <= inner.end <= outer.end
        doc = trace.finish("ok").as_dict()
        json.dumps(doc)  # must be JSON-serializable as-is
        assert doc["status"] == "ok"
        assert [span["name"] for span in doc["spans"]] == ["inner", "outer"]
        assert doc["spans"][0]["annotations"] == {"detail": 7}

    def test_finish_is_idempotent_first_status_wins(self):
        trace = Trace.begin(None)
        trace.finish("http_503")
        trace.finish("ok")
        assert trace.status == "http_503"

    def test_stage_spans_lay_back_to_back_under_parent(self):
        trace = Trace.begin(None)
        parent = Span("solve", new_id(), None, trace.start, trace.start + 1.0)
        stages = [
            {"name": "milp.presolve", "seconds": 0.25, "shortcut": False},
            {"name": "milp.search", "seconds": 0.5, "backend": "scipy-highs"},
            {"name": "bogus entry without seconds"},  # skipped, not fatal
        ]
        trace.add_stage_spans(stages, parent)
        laid = [span for span in trace.spans if span.parent_id == parent.span_id]
        assert [span.name for span in laid] == ["milp.presolve", "milp.search"]
        assert laid[0].start == parent.start
        assert laid[1].start == pytest.approx(laid[0].end)
        assert laid[0].annotations == {"shortcut": False}

    def test_summary_matches_doc_summary(self):
        trace = Trace.begin(None, origin="gateway")
        trace.metadata["fingerprint"] = "f00d"
        with trace.span("work"):
            pass
        trace.finish("ok")
        assert trace.summary()["fingerprint"] == "f00d"
        doc_row = summarize_trace_doc(trace.as_dict())
        assert doc_row["trace_id"] == trace.trace_id
        assert doc_row["spans"] == 1
        assert doc_row["fingerprint"] == "f00d"


class TestStageHooks:
    def test_record_stage_is_noop_without_collector(self):
        record_stage("milp.search", 0.5)  # must not raise or leak anywhere
        with collect_stages() as stages:
            pass
        assert stages == []

    def test_collects_stages_with_annotations(self):
        with collect_stages() as stages:
            record_stage("milp.presolve", 0.1, shortcut=True)
            with stage_timer("milp.search", backend="bb"):
                pass
        assert [s["name"] for s in stages] == ["milp.presolve", "milp.search"]
        assert stages[0]["shortcut"] is True
        assert stages[1]["seconds"] >= 0.0

    def test_nested_collectors_innermost_wins(self):
        with collect_stages() as outer:
            with collect_stages() as inner:
                record_stage("a", 1.0)
            record_stage("b", 2.0)
        assert [s["name"] for s in inner] == ["a"]
        assert [s["name"] for s in outer] == ["b"]

    def test_sink_is_thread_local(self):
        seen_in_thread = []

        def worker():
            record_stage("other-thread", 1.0)  # no collector on this thread
            with collect_stages() as mine:
                record_stage("mine", 1.0)
            seen_in_thread.extend(mine)

        with collect_stages() as stages:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert stages == []  # nothing leaked across threads
        assert [s["name"] for s in seen_in_thread] == ["mine"]
