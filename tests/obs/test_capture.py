"""Capture building, schedule encoding, and both replay front-ends (offline)."""

import json

import pytest

from repro.obs.capture import (
    CAPTURE_SCHEMA_VERSION,
    build_capture,
    capture_schedule,
    load_capture,
    load_trace_docs,
    select_requests,
    write_capture,
)
from repro.obs.__main__ import main as obs_main
from repro.runtime.scheduler import ModeSchedule
from repro.sim.traffic import TraceReplayTraffic


def trace_doc(tid, start, fingerprint, job, origin="router", remote_parent=None):
    return {
        "schema": 1,
        "trace_id": tid,
        "origin": origin,
        "remote_parent": remote_parent,
        "status": "ok",
        "start": start,
        "end": start + 0.01,
        "duration": 0.01,
        "metadata": {"fingerprint": fingerprint, "job": job, "client": "c0"},
        "spans": [],
    }


@pytest.fixture
def docs():
    return [
        trace_doc("t1", 100.0, "aaa111222333", "demo-0"),
        # the owning replica's fragment of the same request: must be deduped
        trace_doc("t1", 100.002, "aaa111222333", "demo-0",
                  origin="gateway", remote_parent="abcd"),
        trace_doc("t2", 100.5, "bbb444555666", "demo-1"),
        trace_doc("t3", 101.25, "aaa111222333", "demo-0"),
        # never decoded (no fingerprint): not replayable
        {"trace_id": "t4", "start": 102.0, "metadata": {}, "spans": []},
    ]


class TestSelectRequests:
    def test_dedupes_by_trace_id_preferring_origin(self, docs):
        requests = select_requests(docs)
        assert [r["trace_id"] for r in requests] == ["t1", "t2", "t3"]
        assert requests[0]["origin"] == "router"  # not the replica fragment

    def test_offsets_are_relative_to_first_arrival(self, docs):
        requests = select_requests(docs)
        assert [r["offset"] for r in requests] == [0.0, 0.5, 1.25]


class TestCaptureDocument:
    def test_schedule_reproduces_captured_cadence(self, docs):
        capture = build_capture(docs, source="unit")
        schedule = capture_schedule(capture)
        assert schedule.steps == (
            ("demo-0", "fp-aaa111222333"),
            ("demo-1", "fp-bbb444555666"),
            ("demo-0", "fp-aaa111222333"),
        )
        timed = schedule.timed_steps()
        assert [time for time, _r, _m in timed] == [0.0, 0.5, 1.25]

    def test_sim_replay_fires_at_captured_offsets(self, docs):
        capture = build_capture(docs)
        requests = TraceReplayTraffic.from_capture(capture).generate(10.0)
        assert [request.time for request in requests] == [0.0, 0.5, 1.25]
        assert requests[1].region == "demo-1"

    def test_empty_capture_refused_by_sim_replay(self):
        with pytest.raises(ValueError, match="no replayable"):
            TraceReplayTraffic.from_capture(build_capture([]))

    def test_file_round_trip_and_schema_gate(self, tmp_path, docs):
        path = str(tmp_path / "capture.json")
        capture = build_capture(docs)
        write_capture(capture, path)
        loaded = load_capture(path)
        assert loaded["requests"] == capture["requests"]
        assert loaded["schema"] == CAPTURE_SCHEMA_VERSION
        bad = dict(capture, schema=99)
        write_capture(bad, path)
        with pytest.raises(ValueError, match="schema"):
            load_capture(path)


class TestLoadTraceDocs:
    def test_reads_jsonl_with_torn_lines(self, tmp_path, docs):
        path = tmp_path / "traces.jsonl"
        lines = [json.dumps(doc) for doc in docs[:3]] + ['{"torn": tr']
        path.write_text("\n".join(lines) + "\n")
        assert len(load_trace_docs(str(path))) == 3

    def test_reads_debug_endpoint_response_shape(self, tmp_path, docs):
        path = tmp_path / "traces.json"
        path.write_text(json.dumps({"traces": docs[:2], "stats": {}}))
        assert len(load_trace_docs(str(path))) == 2


class TestModeScheduleSerialization:
    def test_round_trip_preserves_steps_and_dwells(self):
        schedule = ModeSchedule(
            steps=(("A", "mode1"), ("B", "mode2")), dwells=(0.5, 0.0)
        )
        clone = ModeSchedule.from_dict(schedule.to_dict())
        assert clone == schedule
        assert json.loads(json.dumps(schedule.to_dict())) == schedule.to_dict()

    def test_untimed_round_trip(self):
        schedule = ModeSchedule(steps=(("A", "mode1"),))
        assert ModeSchedule.from_dict(schedule.to_dict()) == schedule


class TestExportCli:
    def test_export_from_jsonl(self, tmp_path, docs, capsys):
        source = tmp_path / "traces.jsonl"
        source.write_text("\n".join(json.dumps(doc) for doc in docs) + "\n")
        out = str(tmp_path / "capture.json")
        assert obs_main(["export", str(source), "-o", out]) == 0
        assert "export OK: 3 requests" in capsys.readouterr().out
        assert len(load_capture(out)["requests"]) == 3

    def test_export_fails_cleanly_on_empty_source(self, tmp_path, capsys):
        source = tmp_path / "empty.jsonl"
        source.write_text("")
        assert obs_main(["export", str(source), "-o", str(tmp_path / "c.json")]) == 1
        assert "no replayable" in capsys.readouterr().err
