"""Unit tests for the trace ring (eviction) and the JSONL sink (rotation)."""

import json
import os

import pytest

from repro.obs.recorder import JsonlSink, TraceRecorder, TraceRing
from repro.obs.trace import Trace


def doc(trace_id: str, **extra):
    return {"trace_id": trace_id, "status": "ok", "spans": [], **extra}


class TestRingEviction:
    def test_oldest_evicted_beyond_capacity(self):
        ring = TraceRing(capacity=3)
        for index in range(5):
            ring.add(doc(f"t{index}"))
        assert len(ring) == 3
        assert ring.get("t0") is None and ring.get("t1") is None
        assert ring.get("t2") is not None
        stats = ring.stats()
        assert stats == {"capacity": 3, "size": 3, "recorded": 5, "evicted": 2}

    def test_list_is_most_recent_first_and_bounded(self):
        ring = TraceRing(capacity=10)
        for index in range(4):
            ring.add(doc(f"t{index}"))
        assert [d["trace_id"] for d in ring.list()] == ["t3", "t2", "t1", "t0"]
        assert [d["trace_id"] for d in ring.list(limit=2)] == ["t3", "t2"]

    def test_same_id_re_record_replaces_in_place(self):
        ring = TraceRing(capacity=2)
        ring.add(doc("a", attempt=1))
        ring.add(doc("b"))
        ring.add(doc("a", attempt=2))  # replaces, does not re-order
        ring.add(doc("c"))  # evicts "a" (still oldest), not "b"
        assert ring.get("a") is None
        assert ring.get("b") is not None and ring.get("c") is not None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceRing(capacity=0)


class TestSinkRotation:
    def test_rotates_and_keeps_bounded_backups(self, tmp_path):
        path = str(tmp_path / "traces.jsonl")
        sink = JsonlSink(path, max_bytes=1024, backups=2)
        big = {"trace_id": "x", "pad": "y" * 400}
        for _ in range(12):
            sink.write(big)
        stats = sink.stats()
        assert stats["written"] == 12
        assert stats["rotations"] >= 2
        assert os.path.exists(path)
        assert os.path.exists(path + ".1") and os.path.exists(path + ".2")
        assert not os.path.exists(path + ".3")  # oldest backups are dropped
        # every surviving line is intact JSON (rotation never tears a line)
        for candidate in (path, path + ".1", path + ".2"):
            with open(candidate, encoding="utf-8") as handle:
                for line in handle:
                    assert json.loads(line)["trace_id"] == "x"

    def test_zero_backups_truncates(self, tmp_path):
        path = str(tmp_path / "traces.jsonl")
        sink = JsonlSink(path, max_bytes=1024, backups=0)
        for _ in range(10):
            sink.write({"pad": "z" * 300})
        assert sink.stats()["rotations"] >= 1
        assert not os.path.exists(path + ".1")

    def test_max_bytes_floor(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(str(tmp_path / "t.jsonl"), max_bytes=10)


class TestRecorderFacade:
    def test_records_live_trace_and_plain_doc(self, tmp_path):
        recorder = TraceRecorder(capacity=8, sink_path=str(tmp_path / "t.jsonl"))
        trace = Trace.begin(None, origin="gateway")
        with trace.span("work"):
            pass
        recorder.record(trace)  # still open: sealed on record
        assert trace.status == "ok"
        assert recorder.get(trace.trace_id)["status"] == "ok"
        recorder.record(doc("plain"))
        assert recorder.get(trace.trace_id)["origin"] == "gateway"
        assert [d["trace_id"] for d in recorder.list()][0] == "plain"
        stats = recorder.stats()
        assert stats["recorded"] == 2
        assert stats["sink"]["written"] == 2
