"""The dashboard renderer: panel markers, both document shapes, robustness."""

from repro.obs.dashboard import histogram_svg, render_dashboard
from repro.server.http import HtmlPayload

GATEWAY_DOC = {
    "counters": {
        "received": 10, "ok": 9, "hit_rate": 0.5, "shed_rate": 0.1,
        "queue_depth": 1, "batches": 3, "batched_jobs": 7, "deduped_jobs": 1,
        "mean_batch_size": 2.3, "flight_waits": 2, "flight_takeovers": 0,
        "uptime_s": 5.0,
    },
    "latency": {"request": {"count": 9, "p50": 0.01, "p90": 0.02, "p99": 0.05,
                            "max": 0.07, "mean": 0.015}},
    "cache": {"hits": 4, "misses": 5, "stores": 5, "flights": 0, "stale_locks": 0},
    "histograms": {"request": {"counts": [0, 2, 5, 2, 0], "bounds": []},
                   "batch_size": {"counts": [1, 2], "bounds": []}},
}


class TestRenderDashboard:
    def test_gateway_panels_present(self):
        page = render_dashboard(GATEWAY_DOC, title="gw :1")
        assert isinstance(page, HtmlPayload)
        for marker in ("panel-overview", "panel-latency-request",
                       "panel-batching", "panel-cache", "panel-traces", "<svg"):
            assert marker in page
        assert "panel-fleet" not in page  # no replicas block on a gateway

    def test_router_rollup_adds_fleet_panel(self):
        doc = dict(
            GATEWAY_DOC,
            router={"routed": 5, "retries": 1, "failovers": 0, "unavailable": 0},
            replicas=[
                {"node": "127.0.0.1:1", "reporting": True, "routed": 3, "failures": 0},
                {"node": "127.0.0.1:2", "reporting": False, "routed": 2, "failures": 1},
            ],
        )
        page = render_dashboard(doc, title="router")
        assert "panel-fleet" in page and "127.0.0.1:2" in page

    def test_traces_and_health_render(self):
        traces = [{"trace_id": "abc", "status": "ok", "duration": 0.02,
                   "spans": [1, 2], "metadata": {"fingerprint": "deadbeef"}}]
        health = {"status": "ok", "uptime_seconds": 7.5, "git_rev": "cafe123"}
        page = render_dashboard(GATEWAY_DOC, traces=traces, health=health)
        assert "/debug/traces/abc" in page
        assert "cafe123" in page

    def test_empty_document_renders(self):
        page = render_dashboard({})
        assert "panel-overview" in page and "no traces recorded yet" in page

    def test_markup_is_escaped(self):
        traces = [{"trace_id": "<script>", "status": "ok", "duration": 0.0,
                   "spans": [], "metadata": {}}]
        page = render_dashboard({}, traces=traces, title="<b>t</b>")
        assert "<script>" not in page
        assert "<b>t</b>" not in page


class TestHistogramSvg:
    def test_empty_counts_render_placeholder(self):
        assert "no samples" in histogram_svg([])
        assert "no samples" in histogram_svg([0, 0, 0])

    def test_bars_scale_to_peak(self):
        svg = histogram_svg([1, 0, 4])
        assert svg.count("<rect") == 2  # empty buckets draw no bar
        assert "bucket 2: 4" in svg
