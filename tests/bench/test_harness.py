"""Coverage for the repro.bench harness: registry, runner, report, compare."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import Delta, compare_reports, format_comparison
from repro.bench.registry import Benchmark, BenchmarkRegistry, benchmark
from repro.bench.report import (
    SCHEMA_VERSION,
    BenchReport,
    BenchResult,
    load_report,
    save_report,
    summarize,
)
from repro.bench.runner import BenchProfile, Workload, run_benchmark, run_suite


def _make_registry_with(name="group.case", units=3.0):
    registry = BenchmarkRegistry()

    calls = {"count": 0}

    @benchmark(name, registry=registry)
    def case(profile):
        """A counting workload."""

        def run():
            calls["count"] += 1

        return Workload(run, units=units, unit_name="widgets")

    return registry, calls


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_collision_raises():
    registry, _ = _make_registry_with("a.b")
    with pytest.raises(ValueError, match="already registered"):
        registry.register(Benchmark(name="a.b", group="a", factory=lambda p: None))


def test_registry_group_defaults_to_first_dotted_component():
    registry, _ = _make_registry_with("floorplan.thing")
    assert registry.get("floorplan.thing").group == "floorplan"


def test_registry_select_filters_by_substring():
    registry = BenchmarkRegistry()
    for name in ("floorplan.a", "floorplan.b", "milp.c"):
        registry.register(Benchmark(name=name, group="x", factory=lambda p: None))
    assert [b.name for b in registry.select(["floorplan"])] == [
        "floorplan.a",
        "floorplan.b",
    ]
    assert [b.name for b in registry.select(None)] == sorted(registry.names())
    assert registry.select(["nope"]) == []


def test_registry_unknown_name():
    registry = BenchmarkRegistry()
    with pytest.raises(KeyError, match="unknown benchmark"):
        registry.get("missing")


# ----------------------------------------------------------------------
# runner protocol
# ----------------------------------------------------------------------
def test_runner_warmup_plus_repeats_call_counts():
    registry, calls = _make_registry_with()
    profile = BenchProfile(name="quick", warmup=2, repeats=7)
    measurement = run_benchmark(registry.get("group.case"), profile)
    assert calls["count"] == 9  # 2 warmup + 7 timed
    assert len(measurement.times) == 7
    assert all(t >= 0 for t in measurement.times)
    assert measurement.units == 3.0


def test_runner_extras_and_teardown():
    registry = BenchmarkRegistry()
    events = []

    @benchmark("srv.load", registry=registry)
    def srv_load(profile):
        def run():
            workload.extras["p99_ms"] = 4.5
            workload.extras["shed_rate"] = 0.0

        workload = Workload(run, units=2.0, unit_name="requests")
        workload.teardown = lambda: events.append("teardown")
        return workload

    measurement = run_benchmark(registry.get("srv.load"), BenchProfile.quick())
    assert measurement.extras == {"p99_ms": 4.5, "shed_rate": 0.0}
    assert events == ["teardown"]  # called exactly once, after the last round

    report = summarize([measurement], "quick")
    assert report.result("srv.load").extras["p99_ms"] == 4.5


def test_runner_teardown_runs_even_when_a_round_raises():
    registry = BenchmarkRegistry()
    events = []

    @benchmark("srv.boom", registry=registry)
    def srv_boom(profile):
        def run():
            raise RuntimeError("round failed")

        workload = Workload(run)
        workload.teardown = lambda: events.append("teardown")
        return workload

    with pytest.raises(RuntimeError, match="round failed"):
        run_benchmark(registry.get("srv.boom"), BenchProfile.quick())
    assert events == ["teardown"]


def test_report_extras_round_trip_and_optional(tmp_path):
    registry = BenchmarkRegistry()

    @benchmark("srv.extras", registry=registry)
    def srv_extras(profile):
        workload = Workload(lambda: None)
        workload.extras["hit_rate"] = 1.0
        return workload

    measurement = run_benchmark(registry.get("srv.extras"), BenchProfile.quick())
    report = summarize([measurement], "quick")
    loaded = load_report(save_report(report, tmp_path / "extras.json"))
    assert loaded.result("srv.extras").extras == {"hit_rate": 1.0}

    # a pre-extras snapshot (no "extras" key anywhere) still loads
    data = report.to_dict()
    for entry in data["results"]:
        entry.pop("extras", None)
    legacy = tmp_path / "legacy.json"
    legacy.write_text(json.dumps(data))
    assert load_report(legacy).result("srv.extras").extras == {}


def test_runner_rejects_non_workload_factories():
    registry = BenchmarkRegistry()
    registry.register(Benchmark(name="bad.case", group="bad", factory=lambda p: object()))
    with pytest.raises(TypeError, match="must return a Workload"):
        run_benchmark(registry.get("bad.case"), BenchProfile.quick())


def test_run_suite_respects_patterns():
    registry, calls = _make_registry_with("one.a")

    @benchmark("two.b", registry=registry)
    def other(profile):
        return Workload(lambda: None)

    measurements = run_suite(
        BenchProfile(name="quick", warmup=0, repeats=1),
        patterns=["one"],
        registry=registry,
    )
    assert [m.benchmark.name for m in measurements] == ["one.a"]
    assert calls["count"] == 1


def test_profile_by_name_and_scaled():
    assert BenchProfile.by_name("quick").scaled(10, 99) == 10
    assert BenchProfile.by_name("full").scaled(10, 99) == 99
    with pytest.raises(ValueError):
        BenchProfile.by_name("medium")


# ----------------------------------------------------------------------
# report round-trip
# ----------------------------------------------------------------------
def _run_report(tmp_path, name="group.case"):
    registry, _ = _make_registry_with(name)
    profile = BenchProfile(name="quick", warmup=1, repeats=5)
    measurements = run_suite(profile, registry=registry)
    return summarize(measurements, profile.name)


def test_report_json_round_trip(tmp_path):
    report = _run_report(tmp_path)
    path = save_report(report, tmp_path / "BENCH_test.json")
    loaded = load_report(path)
    assert loaded.schema_version == SCHEMA_VERSION
    assert loaded.profile == "quick"
    assert loaded.names() == report.names()
    original = report.result("group.case")
    restored = loaded.result("group.case")
    assert restored == original  # dataclass equality covers every field
    assert restored.repeats == 5
    assert restored.unit_name == "widgets"
    assert restored.p10_s <= restored.median_s <= restored.p90_s


def test_report_rejects_wrong_schema_version(tmp_path):
    report = _run_report(tmp_path)
    data = report.to_dict()
    data["schema_version"] = SCHEMA_VERSION + 1
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="unsupported benchmark report schema"):
        load_report(path)


def test_report_rejects_missing_fields(tmp_path):
    report = _run_report(tmp_path)
    data = report.to_dict()
    del data["git_rev"]
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="missing field"):
        load_report(path)


def test_result_rejects_unknown_and_missing_fields():
    base = {
        "name": "x",
        "group": "g",
        "repeats": 1,
        "warmup": 0,
        "median_s": 1.0,
        "p10_s": 1.0,
        "p90_s": 1.0,
        "mean_s": 1.0,
        "min_s": 1.0,
        "units": 1.0,
        "unit_name": "ops",
        "throughput": 1.0,
        "peak_rss_kb": None,
    }
    with pytest.raises(ValueError, match="unknown"):
        BenchResult.from_dict({**base, "bogus": 1})
    missing = dict(base)
    del missing["median_s"]
    with pytest.raises(ValueError, match="missing"):
        BenchResult.from_dict(missing)


# ----------------------------------------------------------------------
# compare
# ----------------------------------------------------------------------
def _report_with(medians, rev="aaaa"):
    results = [
        BenchResult(
            name=name,
            group=name.split(".")[0],
            repeats=5,
            warmup=1,
            median_s=median,
            p10_s=median,
            p90_s=median,
            mean_s=median,
            min_s=median,
            units=1.0,
            unit_name="ops",
            throughput=1.0 / median if median else float("inf"),
            peak_rss_kb=None,
        )
        for name, median in medians.items()
    ]
    return BenchReport(
        results=results,
        git_rev=rev,
        python_version="3.11.0",
        platform="linux",
        profile="quick",
        created_unix=0,
    )


def test_compare_flags_regressions_past_threshold():
    old = _report_with({"a.x": 0.100, "a.y": 0.100})
    new = _report_with({"a.x": 0.130, "a.y": 0.110})
    result = compare_reports(old, new, threshold=0.25)
    assert [d.name for d in result.regressions] == ["a.x"]
    assert not result.ok
    text = format_comparison(result)
    assert "REGRESSION" in text


def test_compare_within_threshold_is_ok():
    old = _report_with({"a.x": 0.100})
    new = _report_with({"a.x": 0.120})
    result = compare_reports(old, new, threshold=0.25)
    assert result.ok and result.regressions == []


def test_compare_ignores_sub_noise_floor_times():
    # 50 microseconds -> far below the gating floor even though 10x slower
    old = _report_with({"a.x": 0.000005})
    new = _report_with({"a.x": 0.000050})
    assert compare_reports(old, new, threshold=0.25).ok


def test_compare_tracks_one_sided_benchmarks():
    old = _report_with({"a.x": 0.1, "a.gone": 0.1})
    new = _report_with({"a.x": 0.1, "a.fresh": 0.1})
    result = compare_reports(old, new)
    assert result.only_old == ["a.gone"]
    assert result.only_new == ["a.fresh"]
    assert [d.name for d in result.deltas] == ["a.x"]


def test_compare_speedup_and_ratio():
    delta = Delta(name="a.x", old_median_s=0.2, new_median_s=0.1)
    assert delta.speedup == pytest.approx(2.0)
    assert delta.ratio == pytest.approx(0.5)
    assert not delta.is_regression(0.25)


def test_compare_rejects_negative_threshold():
    old = _report_with({"a.x": 0.1})
    with pytest.raises(ValueError):
        compare_reports(old, old, threshold=-0.1)


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
def test_cli_compare_exit_codes(tmp_path, capsys):
    from repro.bench.__main__ import main

    old = _report_with({"a.x": 0.100})
    slow = _report_with({"a.x": 0.200})
    old_path = save_report(old, tmp_path / "old.json")
    slow_path = save_report(slow, tmp_path / "slow.json")

    assert main(["compare", str(old_path), str(old_path)]) == 0
    assert main(["compare", str(old_path), str(slow_path), "--threshold", "0.25"]) == 1
    assert (
        main(["compare", str(old_path), str(slow_path), "--threshold", "0.25", "--warn-only"])
        == 0
    )
    assert main(["compare", str(old_path), str(tmp_path / "missing.json")]) == 2
    assert main(["compare", str(old_path), str(slow_path), "--threshold", "-1"]) == 2
    capsys.readouterr()  # swallow CLI chatter


def test_cli_run_rejects_conflicting_profiles_and_bad_filters(capsys):
    from repro.bench.__main__ import main

    assert main(["--quick", "--full"]) == 2
    assert main(["--quick", "--filter", "no-such-benchmark-anywhere"]) == 2
    capsys.readouterr()


def test_cli_list_prints_registered_names(capsys):
    from repro.bench.__main__ import main
    from repro.bench.registry import REGISTRY

    assert main(["--list"]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert out == REGISTRY.names()
    assert "floorplan.sp_relations" in out
