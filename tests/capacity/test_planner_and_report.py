"""Tests of the capacity planner, SLO evaluation and deterministic reports."""

import pytest

from repro.capacity import (
    CapacityScenario,
    CapacitySLO,
    DeviceProfile,
    capacity_curve,
    evaluate_slo,
    plan_document,
    plan_min_devices,
    render_json,
    render_markdown,
)
from repro.capacity.__main__ import main as capacity_main


def scenario(rate=60.0, **kwargs):
    profile = DeviceProfile(
        name="dev",
        frame_counts={"A": 100, "B": 150},
        seconds_per_frame=1e-3,  # ~8 req/s of capacity per device
    )
    defaults = dict(horizon=30.0, seed=0)
    defaults.update(kwargs)
    return CapacityScenario(profile=profile, rate=rate, **defaults)


SLO = CapacitySLO(
    max_p99_latency_s=0.5, max_blocking=0.02, min_throughput_fraction=0.95
)


class TestPlanMinDevices:
    def test_finds_a_minimal_passing_size(self):
        outcome = plan_min_devices(scenario(), SLO, max_devices=64)
        assert outcome.min_devices is not None
        # minimal: the found size passes, one fewer fails
        result = scenario().build(outcome.min_devices).run()
        assert evaluate_slo(result, SLO).ok
        if outcome.min_devices > 1:
            below = scenario().build(outcome.min_devices - 1).run()
            assert not evaluate_slo(below, SLO).ok

    def test_search_is_deterministic(self):
        first = plan_min_devices(scenario(), SLO, max_devices=64)
        second = plan_min_devices(scenario(), SLO, max_devices=64)
        assert first.min_devices == second.min_devices
        assert [e.metrics for e in first.evaluations] == [
            e.metrics for e in second.evaluations
        ]

    def test_unreachable_slo_returns_none(self):
        # consistent-hash over two region keys can use at most two devices,
        # so this offered load can never meet the SLO no matter the fleet
        outcome = plan_min_devices(
            scenario(dispatcher="consistent-hash"), SLO, max_devices=32
        )
        assert outcome.min_devices is None
        assert all(not evaluation.ok for evaluation in outcome.evaluations)

    def test_evaluations_record_search_trajectory(self):
        outcome = plan_min_devices(scenario(), SLO, max_devices=64)
        sizes = [evaluation.num_devices for evaluation in outcome.evaluations]
        assert len(sizes) == len(set(sizes))  # each size evaluated once
        assert outcome.evaluation_for(outcome.min_devices).ok

    def test_slo_validation(self):
        with pytest.raises(ValueError):
            CapacitySLO(max_p99_latency_s=0.0)
        with pytest.raises(ValueError):
            CapacitySLO(max_blocking=1.5)
        with pytest.raises(ValueError):
            CapacitySLO(min_throughput_fraction=0.0)


class TestCapacityCurve:
    def test_min_devices_nondecreasing_in_load(self):
        curve = capacity_curve(scenario(), SLO, [0.5, 1.0, 1.5], max_devices=64)
        sizes = [point["min_devices"] for point in curve]
        assert all(size is not None for size in sizes)
        assert sizes == sorted(sizes)

    def test_rejects_nonpositive_multiplier(self):
        with pytest.raises(ValueError):
            capacity_curve(scenario(), SLO, [0.0])


class TestReports:
    def test_json_byte_identical_across_runs(self):
        def render():
            outcome = plan_min_devices(scenario(), SLO, max_devices=64)
            curve = capacity_curve(scenario(), SLO, [0.5, 1.0], max_devices=64)
            return render_json(plan_document(scenario(), SLO, outcome, curve=curve))

        assert render() == render()

    def test_document_schema_and_content(self):
        outcome = plan_min_devices(scenario(), SLO, max_devices=64)
        document = plan_document(scenario(), SLO, outcome)
        assert document["schema"] == "repro.capacity/1"
        assert document["min_devices"] == outcome.min_devices
        assert document["scenario"]["regions"] == {"A": 100, "B": 150}
        assert len(document["search"]) == len(outcome.evaluations)

    def test_markdown_mentions_the_answer(self):
        outcome = plan_min_devices(scenario(), SLO, max_devices=64)
        markdown = render_markdown(plan_document(scenario(), SLO, outcome))
        assert f"Minimum fleet size: {outcome.min_devices} device(s)" in markdown
        assert "## Search trajectory" in markdown


class TestCli:
    def test_writes_deterministic_json(self, tmp_path):
        args = [
            "--rate", "60", "--horizon", "20", "--seconds-per-frame", "0.001",
            "--p99", "0.5", "--quiet",
        ]
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert capacity_main(args + ["--json", str(first)]) == 0
        assert capacity_main(args + ["--json", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_exit_code_2_when_unreachable(self, tmp_path):
        code = capacity_main(
            [
                "--rate", "500", "--horizon", "10", "--seconds-per-frame", "0.001",
                "--dispatcher", "consistent-hash", "--max-devices", "8", "--quiet",
            ]
        )
        assert code == 2
