"""Tests of the multi-device fleet simulation."""

import pytest

from repro.capacity import (
    DeviceProfile,
    FleetConfig,
    FleetSimulation,
    make_dispatcher,
)
from repro.sim import PoissonTraffic, RandomFaults, ScheduledFaults


def profile(seconds_per_frame=1e-3, num_ports=1):
    return DeviceProfile(
        name="dev",
        frame_counts={"A": 100, "B": 150},
        seconds_per_frame=seconds_per_frame,
        num_ports=num_ports,
    )


def simulation(num_devices=4, rate=20.0, horizon=30.0, seed=0, **kwargs):
    return FleetSimulation(
        profile=profile(),
        num_devices=num_devices,
        traffic=PoissonTraffic(["A", "B"], rate=rate, seed=seed),
        dispatcher=make_dispatcher(kwargs.pop("dispatcher", "least-loaded")),
        config=FleetConfig(horizon=horizon, **kwargs.pop("config", {})),
        **kwargs,
    )


class TestDeviceProfile:
    def test_service_time_from_frames(self):
        assert profile().service_time("A") == pytest.approx(0.1)
        assert profile().service_time("B") == pytest.approx(0.15)
        assert profile().regions() == ["A", "B"]

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile("bad", {})
        with pytest.raises(ValueError):
            DeviceProfile("bad", {"A": 1}, seconds_per_frame=0.0)
        with pytest.raises(ValueError):
            DeviceProfile("bad", {"A": 1}, num_ports=0)

    def test_from_floorplan_uses_frame_counts(self, two_type_device):
        from repro.bitstream.frames import frame_count
        from repro.floorplan import Rect

        rects = {"A": Rect(0, 0, 2, 2), "B": Rect(5, 0, 2, 2)}
        built = DeviceProfile.from_floorplan(two_type_device, rects)
        for region, rect in rects.items():
            assert built.frame_counts[region] == frame_count(two_type_device, rect)


class TestFleetSimulation:
    def test_every_offered_request_is_accounted_for(self):
        result = simulation().run()
        assert result.offered > 0
        served = len(result.stats.served)
        blocked = len(result.stats.blocked) + result.stats.rejected_arrivals
        assert served + blocked == result.offered

    def test_deterministic_across_runs(self):
        first = simulation().run()
        second = simulation().run()
        assert first.metrics() == second.metrics()
        assert first.events_processed == second.events_processed
        assert [r.request_id for r in first.stats.records] == [
            r.request_id for r in second.stats.records
        ]

    def test_per_device_stats_merge_into_rollup(self):
        result = simulation().run()
        assert sum(len(stats) for stats in result.per_device.values()) == len(
            result.stats
        )
        assert set(result.per_device) == {f"dev-{i:03d}" for i in range(4)}

    def test_more_devices_do_not_hurt_p99(self):
        small = simulation(num_devices=1, rate=15.0).run()
        large = simulation(num_devices=8, rate=15.0).run()
        assert (
            large.metrics()["p99_latency_s"] <= small.metrics()["p99_latency_s"]
        )

    def test_overload_sheds_with_bounded_queues(self):
        # one device, tiny queue, heavy traffic: shedding must kick in
        result = simulation(
            num_devices=1, rate=50.0, config={"queue_capacity": 2}
        ).run()
        assert result.stats.rejected_arrivals > 0
        assert result.metrics()["blocking_probability"] > 0.0

    def test_fault_and_repair_cycle_records_downtime(self):
        plans = {"dev-000": ScheduledFaults([(5.0, "dev-000")])}
        result = simulation(
            num_devices=2, rate=5.0, fault_plans=plans, config={"repair_time": 3.0}
        ).run()
        assert result.downtime == {"dev-000": pytest.approx(3.0)}
        assert result.stats.fault_times == [5.0]
        # the fleet keeps serving through the fault window
        assert result.metrics()["throughput_fraction"] > 0.9

    def test_random_fault_plans_are_deterministic(self):
        def build():
            return simulation(
                num_devices=3,
                rate=10.0,
                fault_plans={
                    f"dev-{i:03d}": RandomFaults([f"dev-{i:03d}"], rate=0.05, seed=i)
                    for i in range(3)
                },
            ).run()

        assert build().metrics() == build().metrics()

    def test_down_device_receives_no_new_starts(self):
        # device 0 is down from t=1 until t=101, past the 10 s horizon: no
        # service may start on it inside the outage window (anything queued
        # before the fault drains only after the repair)
        plans = {"dev-000": ScheduledFaults([(1.0, "dev-000")])}
        result = simulation(
            num_devices=2,
            rate=5.0,
            horizon=10.0,
            fault_plans=plans,
            config={"repair_time": 100.0},
        ).run()
        in_outage = [
            record
            for record in result.per_device["dev-000"].records
            if 1.0 < record.start < 101.0
        ]
        assert in_outage == []

    def test_validation(self):
        with pytest.raises(ValueError):
            simulation(num_devices=0)
        with pytest.raises(ValueError):
            FleetConfig(horizon=0.0)
        with pytest.raises(ValueError):
            FleetConfig(repair_time=0.0)
