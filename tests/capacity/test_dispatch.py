"""Tests of the fleet dispatchers."""

import pytest

from repro.capacity import (
    ConsistentHash,
    LeastLoaded,
    RoundRobin,
    dispatcher_names,
    make_dispatcher,
)
from repro.sim.traffic import ModeRequest


class FakeDevice:
    def __init__(self, index, name, load=0, accepting=True):
        self.index = index
        self.name = name
        self.load = load
        self.accepting = accepting

    def can_accept(self):
        return self.accepting


def request(region="A"):
    return ModeRequest(time=0.0, region=region, mode="mode1")


def fleet(count=4, **kwargs):
    return [FakeDevice(i, f"dev-{i:03d}", **kwargs) for i in range(count)]


class TestRoundRobin:
    def test_cycles_through_devices(self):
        devices = fleet(3)
        rr = RoundRobin()
        picks = [rr.assign(request(), devices).index for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_unavailable(self):
        devices = fleet(3)
        devices[1].accepting = False
        rr = RoundRobin()
        picks = [rr.assign(request(), devices).index for _ in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_none_when_all_full(self):
        devices = fleet(2, accepting=False)
        assert RoundRobin().assign(request(), devices) is None


class TestLeastLoaded:
    def test_picks_minimum_load(self):
        devices = fleet(3)
        devices[0].load = 5
        devices[1].load = 2
        devices[2].load = 7
        assert LeastLoaded().assign(request(), devices).index == 1

    def test_index_breaks_ties(self):
        devices = fleet(3, load=1)
        assert LeastLoaded().assign(request(), devices).index == 0

    def test_ignores_unavailable(self):
        devices = fleet(2)
        devices[0].load = 0
        devices[0].accepting = False
        devices[1].load = 9
        assert LeastLoaded().assign(request(), devices).index == 1


class TestConsistentHash:
    def test_region_affinity_is_stable(self):
        devices = fleet(5)
        ch = ConsistentHash()
        first = ch.assign(request("regionX"), devices)
        for _ in range(10):
            assert ch.assign(request("regionX"), devices) is first

    def test_failover_follows_ring_preference(self):
        devices = fleet(5)
        ch = ConsistentHash()
        owner = ch.assign(request("regionX"), devices)
        owner.accepting = False
        fallback = ch.assign(request("regionX"), devices)
        assert fallback is not owner
        # restoring the owner restores the original routing
        owner.accepting = True
        assert ch.assign(request("regionX"), devices) is owner

    def test_different_fleet_rebuilds_ring(self):
        ch = ConsistentHash()
        small = fleet(2)
        large = fleet(6)
        assert ch.assign(request("regionX"), small).name in {d.name for d in small}
        assert ch.assign(request("regionX"), large).name in {d.name for d in large}


class TestRegistry:
    def test_known_names_construct(self):
        for name in dispatcher_names():
            assert make_dispatcher(name) is not None

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_dispatcher("no-such-dispatcher")
