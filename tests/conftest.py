"""Shared fixtures.

Solver-heavy fixtures are session-scoped so the MILP runs once per test
session; every test that needs a solved floorplan reuses the same small
instances.
"""

from __future__ import annotations

import pytest

from repro.device.catalog import (
    simple_two_type_device,
    synthetic_device,
    virtex5_fx70t_like,
)
from repro.device.partition import columnar_partition
from repro.device.resources import ResourceVector
from repro.floorplan.problem import Connection, FloorplanProblem, Region
from repro.floorplan.solver import FloorplanSolver
from repro.milp import SolverOptions
from repro.relocation.spec import RelocationSpec


@pytest.fixture(scope="session")
def small_device():
    """A 10x4 device with CLB/BRAM/DSP columns, no forbidden areas."""
    return synthetic_device(10, 4, bram_every=4, dsp_every=7, name="test-small")


@pytest.fixture(scope="session")
def two_type_device():
    """The 12x6 CLB/BRAM device used by geometry-oriented tests."""
    return simple_two_type_device()


@pytest.fixture(scope="session")
def fx70t_device():
    """The Virtex-5 FX70T-like device of the SDR case study."""
    return virtex5_fx70t_like()


@pytest.fixture(scope="session")
def small_partition(small_device):
    return columnar_partition(small_device)


@pytest.fixture(scope="session")
def two_type_partition(two_type_device):
    return columnar_partition(two_type_device)


@pytest.fixture(scope="session")
def tiny_problem(small_device):
    """Three small regions on the 10x4 device — solves in well under a second."""
    regions = [
        Region("alpha", ResourceVector(CLB=4)),
        Region("beta", ResourceVector(CLB=2, BRAM=1)),
        Region("gamma", ResourceVector(CLB=2, DSP=1)),
    ]
    connections = [
        Connection("alpha", "beta", weight=8),
        Connection("beta", "gamma", weight=8),
    ]
    return FloorplanProblem(small_device, regions, connections, name="tiny")


@pytest.fixture(scope="session")
def fast_options():
    """Solver options that keep every MILP test bounded."""
    return SolverOptions(time_limit=30, mip_gap=0.02)


@pytest.fixture(scope="session")
def tiny_solution(tiny_problem, fast_options):
    """A solved (no relocation) floorplan of the tiny problem."""
    report = FloorplanSolver(tiny_problem, options=fast_options).solve()
    assert report.solution.status.has_solution
    return report


@pytest.fixture(scope="session")
def tiny_relocation_solution(tiny_problem, fast_options):
    """The tiny problem solved with one hard free-compatible area per small region."""
    spec = RelocationSpec.as_constraint({"beta": 1, "gamma": 1})
    report = FloorplanSolver(tiny_problem, relocation=spec, options=fast_options).solve()
    assert report.solution.status.has_solution
    return report, spec
